package core

// The free-procedure optimization of §5.2: instead of rescanning every
// thread's stack once per pointer in the free set (O(ptrs × stacks)), scan
// each thread once, hashing every reference it exposes, then test each
// free-set pointer against the hash set (O(stacks + ptrs)).
//
// The scan-consistency protocol is unchanged: a victim that commits a
// segment mid-inspection is re-inspected. Entries hashed from a torn
// inspection are kept — a stale entry can only defer a free, never allow
// an unsafe one.
//
// The paper found this optimization did not pay off at its scan rates
// (the cost is amortized over MaxFree frees); the ablation-scan experiment
// reproduces exactly that comparison.

import (
	"stacktrack/internal/prog/dataflow"
	"stacktrack/internal/sched"
	"stacktrack/internal/word"
)

// hashedScanState is the resumable state of one hashed SCAN_AND_FREE.
type hashedScanState struct {
	st      *StackTrack
	ptrs    []word.Addr
	victims []*sched.Thread

	slowActive bool

	ti      int
	phase   int
	operPre uint64
	htmPre  uint64
	sp      int
	pos     int
	refsLen int

	// held collects the canonicalized object starts referenced anywhere.
	held map[word.Addr]struct{}

	// mask is the victim's current-operation track mask (nil: scan all);
	// fbase is the stack index of the operation's frame base.
	mask  *dataflow.TrackMask
	fbase int

	ended bool
}

// startHashedScan snapshots the free set and prepares the state machine,
// borrowing the thread's scratch buffers instead of allocating per scan.
func (st *StackTrack) startHashedScan(t *sched.Thread) *hashedScanState {
	ts := st.state(t)
	held := ts.scanHeld
	if held == nil {
		held = make(map[word.Addr]struct{}, 64)
	}
	clear(held)
	s := &hashedScanState{
		st:         st,
		ptrs:       append(ts.scanPtrs[:0], ts.freeSet...),
		victims:    st.sc.Threads(),
		slowActive: st.slowCount > 0,
		held:       held,
	}
	ts.scanPtrs, ts.scanHeld = nil, nil
	ts.freeSet = ts.freeSet[:0]
	st.c.scans.Inc(t.ID)
	t.Trace(sched.TraceScanStart, uint64(len(s.ptrs)))
	return s
}

// note canonicalizes one scanned word into the held set.
func (s *hashedScanState) note(w uint64) {
	p := word.Ptr(w)
	if os, ok := s.st.al.ObjectStart(p); ok {
		s.held[os] = struct{}{}
	}
}

// step advances the scan by one chunk; true when complete.
func (s *hashedScanState) step(t *sched.Thread) bool {
	if s.ti >= len(s.victims) {
		if !s.ended {
			s.ended = true
			s.finish(t)
		}
		return true
	}
	v := s.victims[s.ti]

	switch s.phase {
	case phasePickVictim:
		act := t.LoadPlain(v.ActivityAddr())
		if v.Done() || act == 0 {
			s.ti++
			return false
		}
		s.operPre = t.LoadPlain(v.OperCntAddr())
		s.htmPre = t.LoadPlain(v.SplitsAddr())
		s.sp = int(t.LoadPlain(v.SPAddr()))
		if s.sp > sched.StackWords {
			s.sp = sched.StackWords
		}
		s.mask, s.fbase = s.st.victimMask(act, s.sp)
		s.pos = 0
		s.st.c.scanTargets.Inc(t.ID)
		s.phase = phaseStack

	case phaseStack:
		end := s.pos + s.st.cfg.ScanChunkWords
		if end > s.sp {
			end = s.sp
		}
		loaded := 0
		for ; s.pos < end; s.pos++ {
			if s.mask != nil && !maskTracksStack(s.mask, s.fbase, s.pos) {
				s.st.c.elidedWords.Inc(t.ID)
				continue
			}
			s.note(t.LoadPlain(v.StackBase + word.Addr(s.pos)))
			loaded++
			s.st.c.scannedWords.Inc(t.ID)
			s.st.c.scannedDepth.Inc(t.ID)
		}
		if s.mask != nil {
			chargeWords(t, loaded)
		} else {
			chargeWords(t, s.st.cfg.ScanChunkWords)
		}
		if s.pos >= s.sp {
			s.phase = phaseRegs
		}

	case phaseRegs:
		loaded := 0
		for i := 0; i < sched.NumRegs; i++ {
			if s.mask != nil && !maskTracksReg(s.mask, i) {
				s.st.c.elidedWords.Inc(t.ID)
				continue
			}
			s.note(t.LoadPlain(v.RegsBase + word.Addr(i)))
			loaded++
			s.st.c.scannedWords.Inc(t.ID)
		}
		if s.mask != nil {
			chargeWords(t, loaded)
		} else {
			chargeWords(t, sched.NumRegs)
		}
		if s.slowActive {
			s.refsLen = int(t.LoadPlain(v.RefsLenAddr()))
			if s.refsLen > sched.RefsWords {
				s.refsLen = sched.RefsWords
			}
			s.pos = 0
			s.phase = phaseRefs
		} else {
			s.phase = phaseVerify
		}

	case phaseRefs:
		end := s.pos + s.st.cfg.ScanChunkWords
		if end > s.refsLen {
			end = s.refsLen
		}
		for ; s.pos < end; s.pos++ {
			s.note(t.LoadPlain(v.RefsBase + word.Addr(s.pos)))
			s.st.c.scannedWords.Inc(t.ID)
		}
		chargeWords(t, s.st.cfg.ScanChunkWords)
		if s.pos >= s.refsLen {
			s.phase = phaseVerify
		}

	case phaseVerify:
		htmPost := t.LoadPlain(v.SplitsAddr())
		operPost := t.LoadPlain(v.OperCntAddr())
		if s.operPre == operPost && s.htmPre != htmPost {
			// Re-inspect; entries already hashed stay (conservative).
			s.st.c.scanRestarts.Inc(t.ID)
			s.htmPre = t.LoadPlain(v.SplitsAddr())
			s.sp = int(t.LoadPlain(v.SPAddr()))
			if s.sp > sched.StackWords {
				s.sp = sched.StackWords
			}
			// Same operation invocation (operPre == operPost), but the
			// frame geometry may have changed with sp.
			s.mask, s.fbase = s.st.victimMask(t.LoadPlain(v.ActivityAddr()), s.sp)
			s.pos = 0
			s.phase = phaseStack
			return false
		}
		s.ti++
		s.phase = phasePickVictim
	}
	return false
}

// finish frees every pointer not present in the hash set.
func (s *hashedScanState) finish(t *sched.Thread) {
	ts := s.st.state(t)
	var freed uint64
	for _, p := range s.ptrs {
		if _, live := s.held[p]; live {
			s.st.c.falseHeld.Inc(t.ID)
			ts.freeSet = append(ts.freeSet, p)
			continue
		}
		t.FreeNow(p)
		s.st.c.freed.Inc(t.ID)
		freed++
	}
	t.Trace(sched.TraceScanEnd, freed)
	ts.scanPtrs, ts.scanHeld = s.ptrs[:0], s.held
}
