package core

// The StackTrack operation runner: executes an operation's basic blocks as
// a series of hardware-transaction segments (Algorithm 2), falling back to
// the software slow path when a single-block segment keeps failing (§5.4),
// and interleaving SCAN_AND_FREE chunks when the free set fills mid-
// operation.
//
// Segment abort/restart works exactly like hardware: the runner snapshots
// the register file, stack pointer, and program counter at segment start
// (the values a real abort would restore); buffered stack writes are
// discarded by the memory system, allocations are compensated, and
// execution resumes from the segment's first block.

import (
	"fmt"

	"stacktrack/internal/cost"
	"stacktrack/internal/mem"
	"stacktrack/internal/metrics"
	"stacktrack/internal/prog"
	"stacktrack/internal/sched"
	"stacktrack/internal/word"
)

type runnerState uint8

const (
	stIdle runnerState = iota
	stFast
	stSlow
	stScan
)

// Runner executes operations for one thread under StackTrack. It
// implements prog.Runner.
type Runner struct {
	st *StackTrack

	op    *prog.Op
	pc    int
	frame sched.Frame
	state runnerState

	// Scan interleaving.
	scan   scanner
	resume runnerState
	opDone bool

	// Segment state (fast path).
	inTx     bool
	segPC    int
	segSP    int
	segRegs  [sched.NumRegs]uint64
	steps    int
	limit    int
	splitIdx int
	segFails int
	usedSlow bool

	// Nodes retired inside the current segment; they enter the free set
	// only after the segment (and thus the unlink) commits.
	retirePending []word.Addr

	// Virtual-time marks for the profiler and the wasted-cycles
	// counter. They never feed back into charging.
	opStartV  cost.Cycles
	segStartV cost.Cycles
}

// NewRunner creates a StackTrack runner bound to framework st.
func NewRunner(st *StackTrack) *Runner { return &Runner{st: st} }

// Busy implements prog.Runner.
func (r *Runner) Busy() bool { return r.state != stIdle }

// Start implements prog.Runner: SPLIT_INIT plus activity registration.
func (r *Runner) Start(t *sched.Thread, op *prog.Op) {
	if r.state != stIdle {
		panic("core: Start while an operation is in progress")
	}
	st := r.st
	st.state(t).runner = r
	r.opStartV = t.VTime()
	// Op setup (activity registration, SPLIT_INIT stores) is tx-begin
	// work; the fence inside is leaf-attributed to its own phase.
	var sp metrics.Span
	if t.Prof != nil {
		sp = t.Prof.SpanStart()
	}
	st.BeginOp(t, op.ID)
	t.Trace(sched.TraceOpStart, uint64(op.ID))

	r.op = op
	r.pc = 0
	r.frame = t.PushFrame(op.FrameWords)
	r.splitIdx = 0
	r.segFails = 0
	r.usedSlow = false
	r.opDone = false
	r.inTx = false

	// SPLIT_INIT: reset the in-memory split counter and fence so the
	// counter write is ordered before any segment commit (Alg. 2).
	t.StorePlain(t.SplitsAddr(), 0)
	t.Fence()
	if t.Prof != nil {
		t.Prof.SpanPhase(sp, metrics.PhaseTxBegin, uint64(t.VTime()-r.opStartV))
	}

	if st.cfg.ForceSlowPct > 0 && t.Rng.Intn(100) < st.cfg.ForceSlowPct {
		// Figure 5 experiment: force this operation onto the slow path.
		r.usedSlow = true
		st.slowBegin(t)
		r.state = stSlow
		return
	}
	r.state = stFast
}

// Step implements prog.Runner.
func (r *Runner) Step(t *sched.Thread) bool {
	switch r.state {
	case stScan:
		if t.Prof != nil {
			sp := t.Prof.SpanStart()
			v0 := t.VTime()
			// Frees inside the scan are leaf-attributed to the free
			// phase; the span keeps only the inspection itself.
			defer func() {
				t.Prof.SpanPhase(sp, metrics.PhaseScan, uint64(t.VTime()-v0))
			}()
		}
		if r.scan.step(t) {
			r.scan = nil
			if r.opDone {
				return r.finishOp(t)
			}
			r.state = r.resume
		}
		return false
	case stSlow:
		return r.stepSlow(t)
	case stFast:
		return r.stepFast(t)
	default:
		panic("core: Step without an operation in progress")
	}
}

// --- Fast path --------------------------------------------------------------

func (r *Runner) stepFast(t *sched.Thread) bool {
	if r.op.Unsupported(r.pc) {
		return r.stepUnsupported(t)
	}
	if !r.inTx {
		r.splitStart(t)
	}
	finished, abort := r.fastWork(t)
	if abort != mem.NoAbort {
		r.handleAbort(t, abort)
		return false
	}
	return finished
}

// stepUnsupported handles a block that cannot run transactionally (§5.4):
// commit the current segment, execute the block non-transactionally, and
// let the next step open a fresh segment.
func (r *Runner) stepUnsupported(t *sched.Thread) bool {
	if r.inTx {
		if abort := r.guardedCommit(t, false); abort != mem.NoAbort {
			r.handleAbort(t, abort)
			return false
		}
	}
	cur := r.pc
	t.CurOp, t.CurBlock = r.op.Name, cur
	var sp metrics.Span
	var v0 cost.Cycles
	if t.Prof != nil {
		sp = t.Prof.SpanStart()
		v0 = t.VTime()
	}
	t.Charge(cost.Block)
	if t.EffectObs != nil {
		r.pc = r.runBlockObserved(t, cur)
	} else {
		r.pc = r.op.Blocks[r.pc](t, r.frame)
	}
	if t.Prof != nil {
		t.Prof.SpanBlock(sp, r.op.ID, cur, r.op.Name, uint64(t.VTime()-v0))
	}
	if r.pc == prog.Done {
		if r.st.NeedScan(t) {
			r.beginScan(t, stFast)
			r.opDone = true
			return false
		}
		return r.finishOp(t)
	}
	if r.st.NeedScan(t) {
		r.beginScan(t, stFast)
	}
	return false
}

// runBlockObserved executes one basic block bracketed by the effect
// observer's BlockStart/BlockEnd events. An abort panic unwinding through
// the block reports committed=false — the execution was partial and its
// writes rolled back, so must-write obligations do not apply — before the
// runner's recovery handles it.
func (r *Runner) runBlockObserved(t *sched.Thread, cur int) int {
	obs := t.EffectObs
	obs.BlockStart(t, r.op.Name, cur)
	done := false
	defer func() { obs.BlockEnd(t, r.op.Name, cur, done) }()
	next := r.op.Blocks[cur](t, r.frame)
	done = true
	return next
}

// guardedCommit attempts a segment commit (with register/counter expose
// unless final) outside fastWork's recovery scope.
func (r *Runner) guardedCommit(t *sched.Thread, final bool) (abort mem.AbortReason) {
	defer func() {
		if rec := recover(); rec != nil {
			ae, ok := rec.(sched.AbortError)
			if !ok {
				panic(rec)
			}
			abort = ae.Reason
		}
	}()
	return r.commitSegment(t, final)
}

// commitSegment performs SPLIT_COMMIT; the caller handles abort recovery.
func (r *Runner) commitSegment(t *sched.Thread, final bool) mem.AbortReason {
	v0 := t.VTime()
	if !final {
		t.ExposeRegisters()
		t.Store(t.SplitsAddr(), uint64(r.splitIdx+1))
	}
	if reason := t.M.Commit(t.Tx); reason != mem.NoAbort {
		return reason
	}
	t.Charge(cost.TxCommit)
	// Leaf-attributed so the expose/commit cost is excluded from the
	// enclosing block span.
	t.ProfLeaf(metrics.PhaseTxCommit, t.VTime()-v0)
	r.afterCommit(t)
	return mem.NoAbort
}

// splitStart begins a segment: SPLIT_START of Algorithm 2.
func (r *Runner) splitStart(t *sched.Thread) {
	ts := r.st.state(t)
	r.steps = 0
	r.limit = ts.segLimit(r.st.cfg, r.op.ID, r.splitIdx)
	t.Tx = t.M.Begin(t.ID)
	t.Mode = sched.ModeFast
	t.Charge(cost.TxBegin)
	t.ProfLeaf(metrics.PhaseTxBegin, cost.TxBegin)
	r.segStartV = t.VTime()
	r.inTx = true
	r.segPC = r.pc
	r.segSP = t.SP()
	r.segRegs = t.RegSnapshot()
}

// fastWork runs one basic block and, when a checkpoint fires, the segment
// commit. Any transactional abort surfaces as the returned reason.
func (r *Runner) fastWork(t *sched.Thread) (finished bool, abort mem.AbortReason) {
	if t.Prof != nil {
		// Deferred so the abort-panic path attributes too; runs after
		// the recover below (LIFO), when the panic is already handled.
		// Commit/fence/free leaves inside claim their own cycles.
		sp := t.Prof.SpanStart()
		v0 := t.VTime()
		blockPC := r.pc
		op := r.op // finishOp may clear r.op before the defer runs
		defer func() {
			t.Prof.SpanBlock(sp, op.ID, blockPC, op.Name, uint64(t.VTime()-v0))
		}()
	}
	defer func() {
		if rec := recover(); rec != nil {
			ae, ok := rec.(sched.AbortError)
			if !ok {
				panic(rec)
			}
			finished = false
			abort = ae.Reason
		}
	}()

	// One basic block, plus the SPLIT_CHECKPOINT bookkeeping the compiler
	// injected at its start.
	cur := r.pc
	t.CurOp, t.CurBlock = r.op.Name, cur
	t.Charge(cost.Block + cost.Checkpoint)
	if t.EffectObs != nil {
		r.pc = r.runBlockObserved(t, cur)
	} else {
		r.pc = r.op.Blocks[r.pc](t, r.frame)
	}
	r.steps++

	// SPLIT_CHECKPOINT policy. Programmer-defined transactional regions
	// (§5.5) constrain it: never commit between two atomic blocks; always
	// commit on a region boundary, so the region starts on a fresh
	// segment and its registers are exposed when it ends.
	final := r.pc == prog.Done
	curAtomic := r.op.Atomic(cur)
	nextAtomic := !final && r.op.Atomic(r.pc)
	var needCommit bool
	switch {
	case final:
		needCommit = true
	case curAtomic && nextAtomic:
		needCommit = false
	case curAtomic != nextAtomic:
		needCommit = true
	default:
		needCommit = r.steps >= r.limit || len(r.retirePending) > 0
	}
	if !needCommit {
		return false, mem.NoAbort
	}

	// SPLIT_COMMIT (the register expose is skipped on the final commit,
	// as the paper permits).
	if reason := r.commitSegment(t, final); reason != mem.NoAbort {
		return false, reason
	}

	if final {
		if r.st.NeedScan(t) {
			r.beginScan(t, stFast)
			r.opDone = true
			return false, mem.NoAbort
		}
		return r.finishOp(t), mem.NoAbort
	}
	if r.st.NeedScan(t) {
		r.beginScan(t, stFast)
	}
	return false, mem.NoAbort
}

// afterCommit performs the post-commit bookkeeping: predictor update,
// statistics, retire flushing.
func (r *Runner) afterCommit(t *sched.Thread) {
	ts := r.st.state(t)
	t.Mode = sched.ModePlain
	t.Tx = nil
	r.inTx = false
	t.ClearTxAllocs()

	ts.onSegCommit(r.st.cfg, r.op.ID, r.splitIdx)
	c := &r.st.c
	c.segments.Inc(t.ID)
	c.segmentBlocks.Add(t.ID, uint64(r.steps))
	c.segLenHist.Observe(t.ID, uint64(r.steps))
	t.Trace(sched.TraceSegCommit, uint64(r.steps))
	r.splitIdx++
	r.segFails = 0

	// The unlinks are durable now; the retired nodes may enter the free
	// set (FREE of Algorithm 1).
	for _, p := range r.retirePending {
		ts.freeSet = append(ts.freeSet, p)
	}
	r.retirePending = r.retirePending[:0]
}

// handleAbort restores the segment-start state and applies the predictor's
// MANAGE_SPLIT_ABORT policy, falling back to the slow path when a one-block
// segment keeps failing.
func (r *Runner) handleAbort(t *sched.Thread, reason mem.AbortReason) {
	v0 := t.VTime()
	if v0 > r.segStartV {
		// Everything since SPLIT_START was thrown away by the abort.
		r.st.c.wastedCycles.Add(t.ID, uint64(v0-r.segStartV))
	}
	t.M.FinishAbort(t.Tx)
	t.Charge(cost.TxAbort)
	t.Mode = sched.ModePlain
	t.Tx = nil
	r.inTx = false
	t.RollbackTxAllocs()
	r.retirePending = r.retirePending[:0]

	t.RestoreRegs(r.segRegs)
	t.SetSP(r.segSP)
	r.pc = r.segPC
	t.Trace(sched.TraceSegAbort, uint64(reason))
	t.ProfLeaf(metrics.PhaseTxAbort, t.VTime()-v0)

	ts := r.st.state(t)
	ts.onSegAbort(r.st.cfg, r.op.ID, r.splitIdx)
	if ts.segLimit(r.st.cfg, r.op.ID, r.splitIdx) == 1 {
		r.segFails++
		if r.segFails >= r.st.cfg.SlowFailThreshold {
			// The hardware cannot execute even a single block: jump
			// to the matching slow-path checkpoint (§5.4).
			r.usedSlow = true
			r.st.slowBegin(t)
			r.state = stSlow
			r.segFails = 0
			t.Trace(sched.TraceSlowPath, uint64(r.pc))
		}
	} else {
		r.segFails = 0
	}
}

// --- Slow path --------------------------------------------------------------

func (r *Runner) stepSlow(t *sched.Thread) bool {
	cur := r.pc
	t.CurOp, t.CurBlock = r.op.Name, cur
	var sp metrics.Span
	var v0 cost.Cycles
	if t.Prof != nil {
		sp = t.Prof.SpanStart()
		v0 = t.VTime()
	}
	t.Charge(cost.Block)
	if t.EffectObs != nil {
		r.pc = r.runBlockObserved(t, cur)
	} else {
		r.pc = r.op.Blocks[r.pc](t, r.frame)
	}
	if t.Prof != nil {
		t.Prof.SpanBlock(sp, r.op.ID, cur, r.op.Name, uint64(t.VTime()-v0))
	}

	if r.pc == prog.Done {
		if r.st.NeedScan(t) {
			r.beginScan(t, stSlow)
			r.opDone = true
			return false
		}
		return r.finishOp(t)
	}
	if r.st.NeedScan(t) {
		r.beginScan(t, stSlow)
	}
	return false
}

// --- Shared -----------------------------------------------------------------

func (r *Runner) beginScan(t *sched.Thread, resume runnerState) {
	r.scan = r.st.startScan(t)
	r.resume = resume
	r.state = stScan
	t.CurOp, t.CurBlock = "(scan)", -1
}

func (r *Runner) finishOp(t *sched.Thread) bool {
	if r.usedSlow {
		r.st.c.opsSlow.Inc(t.ID)
	} else {
		r.st.c.opsFast.Inc(t.ID)
	}
	v0 := t.VTime()
	if t.Mode == sched.ModeSlow {
		r.st.slowCommit(t)
		// Slow-path publication/teardown is commit work, not block
		// work (the enclosing span, if any, must exclude it).
		t.ProfLeaf(metrics.PhaseTxCommit, t.VTime()-v0)
	}
	t.PopFrame(r.frame)
	r.st.EndOp(t)
	t.Trace(sched.TraceOpEnd, t.Reg(prog.RegResult))
	r.st.c.opCycles.Observe(t.ID, uint64(t.VTime()-r.opStartV))
	r.op = nil
	r.state = stIdle
	return true
}

// retireInTx is called by the scheme when a retire arrives inside an active
// segment: the node is parked until the segment (with its unlink) commits.
func (r *Runner) retireInTx(p word.Addr) {
	if !r.inTx {
		panic(fmt.Sprintf("core: retireInTx outside a transaction (%#x)", uint64(p)))
	}
	r.retirePending = append(r.retirePending, p)
}
