package core

// Tests for programmer-defined transactional regions (§5.5) and the
// unsupported-instruction fallback (§5.4).

import (
	"testing"

	"stacktrack/internal/prog"
	"stacktrack/internal/sched"
)

// regionOp builds: pre blocks, an atomic region of n blocks, post blocks.
// Each region block observes the in-memory split counter so the test can
// detect a split occurring inside the region.
func regionOp(n int, splitSeen *bool) *prog.Op {
	b := prog.NewBuilder()
	lbRegion := b.Label()
	lbLoop := b.Label()
	lbPost := b.Label()

	b.Add(func(t *sched.Thread, f sched.Frame) int {
		f.Set(0, 0)
		// Record the committed-segment count at region entry.
		f.Set(1, 0xFFFF) // sentinel: not yet recorded
		return *lbRegion
	})

	b.Bind(lbRegion)
	b.AtomicBegin()
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		// First atomic block: snapshot the split counter. Because the
		// counter is written transactionally at commit, any committed
		// split inside the region would change this value mid-region.
		f.Set(1, t.M.Peek(t.SplitsAddr()))
		return *lbLoop
	})
	b.Bind(lbLoop)
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		if t.M.Peek(t.SplitsAddr()) != f.Get(1) {
			*splitSeen = true
		}
		c := f.Get(0) + 1
		f.Set(0, c)
		if int(c) >= n {
			return *lbPost
		}
		return *lbLoop
	})
	b.AtomicEnd()

	b.Bind(lbPost)
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		t.SetReg(prog.RegResult, f.Get(0))
		return prog.Done
	})
	return b.Build(0, "test.Region", 2)
}

func TestAtomicRegionNeverSplit(t *testing.T) {
	// Limit 5 with a 40-block region: without region support the runtime
	// would commit ~8 times inside it.
	w := newWorld(t, 1, Config{InitialLimit: 5})
	th := w.ts[0]
	splitSeen := false
	op := regionOp(40, &splitSeen)
	r := NewRunner(w.st)
	runOp(t, th, r, op)
	if th.Reg(prog.RegResult) != 40 {
		t.Fatalf("result %d, want 40", th.Reg(prog.RegResult))
	}
	if splitSeen {
		t.Fatal("a segment committed inside a programmer-defined transactional region")
	}
	// There must still be multiple segments overall (pre-region commit,
	// the region itself, the tail).
	if w.st.ThreadStats(0).Segments < 2 {
		t.Fatalf("segments = %d, want >= 2 (region boundary commits)", w.st.ThreadStats(0).Segments)
	}
}

func TestAtomicRegionExposesAtEnd(t *testing.T) {
	w := newWorld(t, 1, Config{InitialLimit: 100})
	th := w.ts[0]
	b := prog.NewBuilder()
	lbIn := b.Label()
	lbPost := b.Label()
	b.Add(func(t *sched.Thread, f sched.Frame) int { return *lbIn })
	b.Bind(lbIn)
	b.AtomicBegin()
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		t.SetReg(6, 0xA70) // set inside the region
		return *lbPost
	})
	b.AtomicEnd()
	b.Bind(lbPost)
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		// The region-end commit must have exposed R6 even though the
		// predictor's limit (100) was never reached.
		if t.M.Peek(t.RegsBase+6) == 0xA70 {
			t.SetReg(prog.RegResult, 1)
		}
		return prog.Done
	})
	op := b.Build(0, "test.RegionExpose", 1)
	r := NewRunner(w.st)
	runOp(t, th, r, op)
	if th.Reg(prog.RegResult) != 1 {
		t.Fatal("registers not exposed at the end of the transactional region")
	}
}

func TestUnsupportedBlockRunsOutsideTx(t *testing.T) {
	w := newWorld(t, 1, Config{InitialLimit: 50})
	th := w.ts[0]
	b := prog.NewBuilder()
	lbU := b.Label()
	lbPost := b.Label()
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		f.Set(0, 7)
		return *lbU
	})
	b.Bind(lbU)
	b.AddUnsupported(func(t *sched.Thread, f sched.Frame) int {
		if t.Mode != sched.ModePlain {
			t.SetReg(prog.RegResult, 999)
		}
		// The prior segment must have committed: its frame write is
		// durable in memory.
		if t.M.Peek(f.Addr(0)) != 7 {
			t.SetReg(prog.RegResult, 998)
		}
		return *lbPost
	})
	b.Bind(lbPost)
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		// Back inside a hardware transaction.
		if t.Mode != sched.ModeFast {
			t.SetReg(prog.RegResult, 997)
		}
		return prog.Done
	})
	op := b.Build(0, "test.Unsupported", 1)
	r := NewRunner(w.st)
	runOp(t, th, r, op)
	switch th.Reg(prog.RegResult) {
	case 999:
		t.Fatal("unsupported block executed inside a transaction")
	case 998:
		t.Fatal("segment not committed before the unsupported block")
	case 997:
		t.Fatal("no fresh segment after the unsupported block")
	}
	if w.st.ThreadStats(0).Segments < 2 {
		t.Fatal("expected a commit before the unsupported block")
	}
}

func TestUnsupportedInsideAtomicPanicsAtBuild(t *testing.T) {
	b := prog.NewBuilder()
	b.AtomicBegin()
	defer func() {
		if recover() == nil {
			t.Fatal("AddUnsupported inside an atomic region should panic")
		}
	}()
	b.AddUnsupported(func(t *sched.Thread, f sched.Frame) int { return prog.Done })
}

func TestUnclosedRegionPanicsAtBuild(t *testing.T) {
	b := prog.NewBuilder()
	b.AtomicBegin()
	b.Add(func(t *sched.Thread, f sched.Frame) int { return prog.Done })
	defer func() {
		if recover() == nil {
			t.Fatal("Build with open region should panic")
		}
	}()
	b.Build(0, "open", 0)
}

func TestUnsupportedOnSlowPath(t *testing.T) {
	// Forced slow path: unsupported blocks execute like any other (the
	// slow path is already non-transactional).
	w := newWorld(t, 1, Config{ForceSlowPct: 100})
	th := w.ts[0]
	b := prog.NewBuilder()
	lbEnd := b.Label()
	b.AddUnsupported(func(t *sched.Thread, f sched.Frame) int { return *lbEnd })
	b.Bind(lbEnd)
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		t.SetReg(prog.RegResult, 5)
		return prog.Done
	})
	op := b.Build(0, "test.SlowUnsupported", 1)
	r := NewRunner(w.st)
	runOp(t, th, r, op)
	if th.Reg(prog.RegResult) != 5 {
		t.Fatal("operation did not complete")
	}
}
