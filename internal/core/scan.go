package core

// SCAN_AND_FREE (Algorithm 1): for every pointer in the free set, inspect
// the stack, registers, and — when the slow path is active anywhere — the
// reference set of every thread in the activity array. A pointer seen
// nowhere is freed; a pointer still referenced stays in the free set for a
// later scan.
//
// The scan runs in chunks of ScanChunkWords so the scheduler interleaves
// other threads between chunks; the split-counter / operation-counter retry
// protocol (Alg. 1 lines 14–29) therefore executes against genuinely
// concurrent segment commits, exactly as in the paper.

import (
	"stacktrack/internal/prog/dataflow"
	"stacktrack/internal/sched"
	"stacktrack/internal/word"
)

const (
	phasePickVictim = iota
	phaseStack
	phaseRegs
	phaseRefs
	phaseVerify
)

// scanner is a resumable SCAN_AND_FREE state machine: the per-pointer scan
// below (Algorithm 1 as written) or the hashed single-pass variant (§5.2).
type scanner interface {
	step(t *sched.Thread) bool
}

// scanState is the resumable state of one SCAN_AND_FREE invocation.
type scanState struct {
	st      *StackTrack
	ptrs    []word.Addr
	found   []bool
	victims []*sched.Thread

	slowActive bool

	pi, ti  int
	phase   int
	operPre uint64
	htmPre  uint64
	sp      int
	pos     int
	refsLen int
	hit     bool
	freed   uint64
	ended   bool

	// mask is the victim's current-operation track mask (nil: scan all);
	// fbase is the stack index of the operation's frame base.
	mask  *dataflow.TrackMask
	fbase int
}

// startScan returns the configured scan state machine over a snapshot of
// the thread's free set.
func (st *StackTrack) startScan(t *sched.Thread) scanner {
	if st.cfg.HashedScan {
		return st.startHashedScan(t)
	}
	return st.startPtrScan(t)
}

// startPtrScan prepares the per-pointer (Algorithm 1) scan, borrowing the
// thread's scratch buffers instead of allocating per scan.
func (st *StackTrack) startPtrScan(t *sched.Thread) *scanState {
	ts := st.state(t)
	n := len(ts.freeSet)
	found := ts.scanFound
	if cap(found) < n {
		found = make([]bool, n)
	}
	found = found[:n]
	for i := range found {
		found[i] = false
	}
	s := &scanState{
		st:         st,
		ptrs:       append(ts.scanPtrs[:0], ts.freeSet...),
		found:      found,
		victims:    st.sc.Threads(),
		slowActive: st.slowCount > 0,
	}
	ts.scanPtrs, ts.scanFound = nil, nil
	ts.freeSet = ts.freeSet[:0]
	st.c.scans.Inc(t.ID)
	t.Trace(sched.TraceScanStart, uint64(len(s.ptrs)))
	return s
}

// matches reports whether scanned word w references object ptr: either
// directly (possibly with a mark bit) or through an interior pointer, which
// the allocator's range query canonicalizes (§5.5).
func (s *scanState) matches(w uint64, ptr word.Addr) bool {
	p := word.Ptr(w)
	if p == ptr {
		return true
	}
	if os, ok := s.st.al.ObjectStart(p); ok && os == ptr {
		return true
	}
	return false
}

// step advances the scan by one chunk. It returns true when the whole scan
// has completed (all pointers dispatched).
func (s *scanState) step(t *sched.Thread) bool {
	if s.pi >= len(s.ptrs) {
		s.end(t)
		return true
	}
	ptr := s.ptrs[s.pi]

	switch s.phase {
	case phasePickVictim:
		if s.ti >= len(s.victims) {
			s.finishPtr(t)
			if s.pi >= len(s.ptrs) {
				s.end(t)
				return true
			}
			return false
		}
		v := s.victims[s.ti]
		// Idle threads hold no operation-local references; skip them
		// (§6 "a scan does not always need to consider all threads").
		act := t.LoadPlain(v.ActivityAddr())
		if v.Done() || act == 0 {
			s.ti++
			return false
		}
		s.operPre = t.LoadPlain(v.OperCntAddr())
		s.htmPre = t.LoadPlain(v.SplitsAddr())
		s.sp = int(t.LoadPlain(v.SPAddr()))
		if s.sp > sched.StackWords {
			s.sp = sched.StackWords
		}
		s.mask, s.fbase = s.st.victimMask(act, s.sp)
		s.pos = 0
		s.hit = false
		s.st.c.scanTargets.Inc(t.ID)
		s.phase = phaseStack

	case phaseStack:
		v := s.victims[s.ti]
		end := s.pos + s.st.cfg.ScanChunkWords
		if end > s.sp {
			end = s.sp
		}
		loaded := 0
		for ; s.pos < end; s.pos++ {
			if s.mask != nil && !maskTracksStack(s.mask, s.fbase, s.pos) {
				s.st.c.elidedWords.Inc(t.ID)
				continue
			}
			w := t.LoadPlain(v.StackBase + word.Addr(s.pos))
			loaded++
			s.st.c.scannedWords.Inc(t.ID)
			s.st.c.scannedDepth.Inc(t.ID)
			if s.matches(w, ptr) {
				s.hit = true
				break
			}
		}
		// Without a mask the seed behavior is preserved: a full chunk is
		// charged even when clamped. With one, only inspected words cost.
		if s.mask != nil {
			chargeWords(t, loaded)
		} else {
			chargeWords(t, s.st.cfg.ScanChunkWords)
		}
		if s.hit {
			s.markFound(t)
			return false
		}
		if s.pos >= s.sp {
			s.phase = phaseRegs
		}

	case phaseRegs:
		v := s.victims[s.ti]
		loaded := 0
		for i := 0; i < sched.NumRegs; i++ {
			if s.mask != nil && !maskTracksReg(s.mask, i) {
				s.st.c.elidedWords.Inc(t.ID)
				continue
			}
			w := t.LoadPlain(v.RegsBase + word.Addr(i))
			loaded++
			s.st.c.scannedWords.Inc(t.ID)
			if s.matches(w, ptr) {
				s.hit = true
				break
			}
		}
		if s.mask != nil {
			chargeWords(t, loaded)
		} else {
			chargeWords(t, sched.NumRegs)
		}
		if s.hit {
			s.markFound(t)
			return false
		}
		if s.slowActive {
			s.refsLen = int(t.LoadPlain(s.victims[s.ti].RefsLenAddr()))
			if s.refsLen > sched.RefsWords {
				s.refsLen = sched.RefsWords
			}
			s.pos = 0
			s.phase = phaseRefs
		} else {
			s.phase = phaseVerify
		}

	case phaseRefs:
		v := s.victims[s.ti]
		end := s.pos + s.st.cfg.ScanChunkWords
		if end > s.refsLen {
			end = s.refsLen
		}
		for ; s.pos < end; s.pos++ {
			w := t.LoadPlain(v.RefsBase + word.Addr(s.pos))
			s.st.c.scannedWords.Inc(t.ID)
			if s.matches(w, ptr) {
				s.hit = true
				break
			}
		}
		chargeWords(t, s.st.cfg.ScanChunkWords)
		if s.hit {
			s.markFound(t)
			return false
		}
		if s.pos >= s.refsLen {
			s.phase = phaseVerify
		}

	case phaseVerify:
		v := s.victims[s.ti]
		htmPost := t.LoadPlain(v.SplitsAddr())
		operPost := t.LoadPlain(v.OperCntAddr())
		if s.operPre == operPost && s.htmPre != htmPost {
			// The victim committed a segment while we were looking:
			// its stack may have changed under us — restart the
			// inspection of this thread (Alg. 1 line 27).
			s.st.c.scanRestarts.Inc(t.ID)
			s.htmPre = t.LoadPlain(v.SplitsAddr())
			s.sp = int(t.LoadPlain(v.SPAddr()))
			if s.sp > sched.StackWords {
				s.sp = sched.StackWords
			}
			// Same operation invocation (operPre == operPost), but the
			// frame geometry may have changed with sp.
			s.mask, s.fbase = s.st.victimMask(t.LoadPlain(v.ActivityAddr()), s.sp)
			s.pos = 0
			s.hit = false
			s.phase = phaseStack
			return false
		}
		s.ti++
		s.phase = phasePickVictim
	}
	return false
}

// markFound records that ptr is still referenced somewhere: one live
// reference is enough to defer the free, so the pointer returns to the free
// set for a later scan and the scan advances to the next pointer.
func (s *scanState) markFound(t *sched.Thread) {
	s.found[s.pi] = true
	ts := s.st.state(t)
	s.st.c.falseHeld.Inc(t.ID)
	ts.freeSet = append(ts.freeSet, s.ptrs[s.pi])
	s.advance()
}

// finishPtr completes the current pointer after every victim was inspected
// without a hit: the object is provably unreferenced and is freed.
func (s *scanState) finishPtr(t *sched.Thread) {
	t.FreeNow(s.ptrs[s.pi])
	s.st.c.freed.Inc(t.ID)
	s.freed++
	s.advance()
}

// end emits the scan-completion event exactly once and returns the
// borrowed scratch buffers to the thread's state.
func (s *scanState) end(t *sched.Thread) {
	if !s.ended {
		s.ended = true
		t.Trace(sched.TraceScanEnd, s.freed)
		ts := s.st.state(t)
		ts.scanPtrs, ts.scanFound = s.ptrs[:0], s.found[:0]
	}
}

func (s *scanState) advance() {
	s.pi++
	s.ti = 0
	s.phase = phasePickVictim
}

// scanAndFreeSync runs a complete scan without yielding — used by Drain at
// teardown, when interleaving no longer matters.
func (st *StackTrack) scanAndFreeSync(t *sched.Thread) {
	s := st.startScan(t)
	for !s.step(t) {
	}
}
