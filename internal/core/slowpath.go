package core

// The software-only slow path (§5.4, Algorithm 5): a non-transactional
// extension of hazard pointers in which *every* shared read and write is
// instrumented. SLOW_READ loads the value, appends it to the thread's
// reference set, fences, and re-reads the location to validate that the
// reference became visible before use; SLOW_WRITE is a SLOW_READ followed
// by the store; SLOW_COMMIT resets the reference set at operation end.
//
// A global slow-path counter tells reclaiming threads whether any thread is
// on the slow path; if so, scans also inspect reference sets.

import (
	"stacktrack/internal/cost"
	"stacktrack/internal/sched"
	"stacktrack/internal/word"
)

// slowAccessor implements sched.SlowAccessor for StackTrack.
type slowAccessor struct {
	st *StackTrack
}

// SlowRead implements SLOW_READ: load, publish into the reference set,
// fence, revalidate. A failed validation (the location changed while we
// were publishing) withdraws the reference and retries; a retry implies
// another thread made progress, so the loop is lock-free.
func (sa slowAccessor) SlowRead(t *sched.Thread, a word.Addr) uint64 {
	st := sa.st
	ts := st.state(t)
	for {
		v := t.LoadPlain(a)
		sa.push(t, ts, v)
		t.Fence()
		if t.LoadPlain(a) == v {
			return v
		}
		sa.pop(t, ts)
	}
}

// SlowWrite implements SLOW_WRITE: record the location's current content in
// the reference set, then store.
func (sa slowAccessor) SlowWrite(t *sched.Thread, a word.Addr, v uint64) {
	sa.SlowRead(t, a)
	t.StorePlain(a, v)
}

// SlowCAS performs the data structures' compare-and-swap on the slow path:
// the protection of SLOW_READ followed by a plain CAS.
func (sa slowAccessor) SlowCAS(t *sched.Thread, a word.Addr, old, new uint64) bool {
	sa.SlowRead(t, a)
	return t.CASDirect(a, old, new)
}

// push appends v to the thread's reference set in simulated memory so
// scanning threads can see it.
func (sa slowAccessor) push(t *sched.Thread, ts *tstate, v uint64) {
	if ts.refsLen >= sched.RefsWords {
		panic("core: slow-path reference set overflow; raise sched.RefsWords")
	}
	t.StorePlain(t.RefsBase+word.Addr(ts.refsLen), v)
	ts.refsLen++
	t.StorePlain(t.RefsLenAddr(), uint64(ts.refsLen))
}

// pop withdraws the most recently pushed reference (failed validation).
func (sa slowAccessor) pop(t *sched.Thread, ts *tstate) {
	ts.refsLen--
	t.StorePlain(t.RefsLenAddr(), uint64(ts.refsLen))
}

// slowBegin moves thread t onto the slow path: bump the global slow-path
// counter (an atomic increment in the paper) and switch the access mode.
func (st *StackTrack) slowBegin(t *sched.Thread) {
	st.slowCount++
	t.Charge(cost.AtomicAdd)
	t.Slow = slowAccessor{st: st}
	t.Mode = sched.ModeSlow
}

// slowCommit implements SLOW_COMMIT: clear the reference set and leave the
// slow path.
func (st *StackTrack) slowCommit(t *sched.Thread) {
	ts := st.state(t)
	ts.refsLen = 0
	t.StorePlain(t.RefsLenAddr(), 0)
	t.Fence()
	st.slowCount--
	t.Charge(cost.AtomicAdd)
	t.Mode = sched.ModePlain
}
