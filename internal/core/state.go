// Snapshot-state support (internal/snap): StackTrack's mutable state is
// the global slow-path counter, each thread's free set and split-predictor
// tables, and each thread's runner — program counter, frame, segment
// rollback snapshot, and (when one is in flight) the resumable
// SCAN_AND_FREE state machine.
//
// Restore runs against a freshly built instance: the scheduler's thread
// state (registers, stack pointer, mode) is restored by sched, the
// in-flight transaction by mem; this file re-links everything that points
// across layers — the frame handle, the operation by ID, the scanner's
// victim list, the slow-path accessor.

package core

import (
	"sort"

	"stacktrack/internal/cost"
	"stacktrack/internal/prog"
	"stacktrack/internal/sched"
	"stacktrack/internal/word"
)

// ScanSnap is a resumable SCAN_AND_FREE state machine's state. One type
// covers both variants; Hashed selects which to rebuild.
type ScanSnap struct {
	Hashed     bool
	Ptrs       []word.Addr
	Found      []bool // per-pointer scan only
	SlowActive bool

	Pi, Ti  int
	Phase   int
	OperPre uint64
	HtmPre  uint64
	SP      int
	Pos     int
	RefsLen int
	Hit     bool
	Freed   uint64
	Held    []word.Addr // hashed scan only, sorted
	Ended   bool
}

// RunnerState is one thread's operation-runner state.
type RunnerState struct {
	Busy      bool
	OpID      int
	PC        int
	FrameBase word.Addr
	FrameSize int
	State     uint8
	Resume    uint8
	OpDone    bool

	InTx     bool
	SegPC    int
	SegSP    int
	SegRegs  [sched.NumRegs]uint64
	Steps    int
	Limit    int
	SplitIdx int
	SegFails int
	UsedSlow bool

	RetirePending []word.Addr

	OpStartV  cost.Cycles
	SegStartV cost.Cycles

	Scan *ScanSnap
}

// ThreadState is one thread's StackTrack context.
type ThreadState struct {
	ID      int
	FreeSet []word.Addr

	Limits       [][]int32
	CommitStreak [][]int32
	AbortStreak  [][]int32

	RefsLen int

	Runner *RunnerState // nil when the thread never started an operation
}

// State is the framework's complete mutable state.
type State struct {
	SlowCount int
	Threads   []ThreadState
}

func copyTable(t [][]int32) [][]int32 {
	out := make([][]int32, len(t))
	for i, row := range t {
		out[i] = append([]int32(nil), row...)
	}
	return out
}

func saveScan(s scanner) *ScanSnap {
	switch sc := s.(type) {
	case *scanState:
		return &ScanSnap{
			Ptrs:       append([]word.Addr(nil), sc.ptrs...),
			Found:      append([]bool(nil), sc.found...),
			SlowActive: sc.slowActive,
			Pi:         sc.pi, Ti: sc.ti, Phase: sc.phase,
			OperPre: sc.operPre, HtmPre: sc.htmPre,
			SP: sc.sp, Pos: sc.pos, RefsLen: sc.refsLen,
			Hit: sc.hit, Freed: sc.freed, Ended: sc.ended,
		}
	case *hashedScanState:
		snap := &ScanSnap{
			Hashed:     true,
			Ptrs:       append([]word.Addr(nil), sc.ptrs...),
			SlowActive: sc.slowActive,
			Ti:         sc.ti, Phase: sc.phase,
			OperPre: sc.operPre, HtmPre: sc.htmPre,
			SP: sc.sp, Pos: sc.pos, RefsLen: sc.refsLen,
			Ended: sc.ended,
		}
		for p := range sc.held {
			snap.Held = append(snap.Held, p)
		}
		sort.Slice(snap.Held, func(i, j int) bool { return snap.Held[i] < snap.Held[j] })
		return snap
	case nil:
		return nil
	default:
		panic("core: unknown scanner type in SaveState")
	}
}

func (st *StackTrack) restoreScan(snap *ScanSnap) scanner {
	if snap == nil {
		return nil
	}
	if snap.Hashed {
		sc := &hashedScanState{
			st:         st,
			ptrs:       append([]word.Addr(nil), snap.Ptrs...),
			victims:    st.sc.Threads(),
			slowActive: snap.SlowActive,
			ti:         snap.Ti, phase: snap.Phase,
			operPre: snap.OperPre, htmPre: snap.HtmPre,
			sp: snap.SP, pos: snap.Pos, refsLen: snap.RefsLen,
			held:  make(map[word.Addr]struct{}, len(snap.Held)),
			ended: snap.Ended,
		}
		for _, p := range snap.Held {
			sc.held[p] = struct{}{}
		}
		return sc
	}
	return &scanState{
		st:         st,
		ptrs:       append([]word.Addr(nil), snap.Ptrs...),
		found:      append([]bool(nil), snap.Found...),
		victims:    st.sc.Threads(),
		slowActive: snap.SlowActive,
		pi:         snap.Pi, ti: snap.Ti, phase: snap.Phase,
		operPre: snap.OperPre, htmPre: snap.HtmPre,
		sp: snap.SP, pos: snap.Pos, refsLen: snap.RefsLen,
		hit: snap.Hit, freed: snap.Freed, ended: snap.Ended,
	}
}

// SaveState copies out the runner's state.
func (r *Runner) SaveState() *RunnerState {
	rs := &RunnerState{
		Busy:  r.state != stIdle,
		State: uint8(r.state), Resume: uint8(r.resume), OpDone: r.opDone,
		InTx: r.inTx, SegPC: r.segPC, SegSP: r.segSP, SegRegs: r.segRegs,
		Steps: r.steps, Limit: r.limit, SplitIdx: r.splitIdx,
		SegFails: r.segFails, UsedSlow: r.usedSlow,
		RetirePending: append([]word.Addr(nil), r.retirePending...),
		OpStartV:      r.opStartV, SegStartV: r.segStartV,
		Scan: saveScan(r.scan),
	}
	if r.op != nil {
		rs.OpID = r.op.ID
		rs.PC = r.pc
		rs.FrameBase = r.frame.Base()
		rs.FrameSize = r.frame.Size()
	}
	return rs
}

// RestoreState overwrites the runner from a saved state. opByID resolves
// operation IDs against the restore target's own op table.
func (r *Runner) RestoreState(rs *RunnerState, t *sched.Thread, opByID func(id int) *prog.Op) {
	r.state = runnerState(rs.State)
	r.resume = runnerState(rs.Resume)
	r.opDone = rs.OpDone
	r.inTx = rs.InTx
	r.segPC, r.segSP, r.segRegs = rs.SegPC, rs.SegSP, rs.SegRegs
	r.steps, r.limit, r.splitIdx, r.segFails = rs.Steps, rs.Limit, rs.SplitIdx, rs.SegFails
	r.usedSlow = rs.UsedSlow
	r.retirePending = append(r.retirePending[:0], rs.RetirePending...)
	r.opStartV, r.segStartV = rs.OpStartV, rs.SegStartV
	r.scan = r.st.restoreScan(rs.Scan)
	r.op = nil
	if rs.Busy {
		r.op = opByID(rs.OpID)
		r.pc = rs.PC
		r.frame = t.RebuildFrame(rs.FrameBase, rs.FrameSize)
	}
}

// SaveState copies out the framework's complete mutable state.
func (st *StackTrack) SaveState() *State {
	s := &State{SlowCount: st.slowCount}
	for tid, ts := range st.threads {
		if ts == nil {
			continue
		}
		cs := ThreadState{
			ID:           tid,
			FreeSet:      append([]word.Addr(nil), ts.freeSet...),
			Limits:       copyTable(ts.limits),
			CommitStreak: copyTable(ts.commitStreak),
			AbortStreak:  copyTable(ts.abortStreak),
			RefsLen:      ts.refsLen,
		}
		if ts.runner != nil {
			cs.Runner = ts.runner.SaveState()
		}
		s.Threads = append(s.Threads, cs)
	}
	return s
}

// RestoreState overwrites the framework's state. runnerOf supplies the
// restore target's per-thread runner (bench owns them); opByID resolves
// operation IDs. sched.RestoreState must already have run (it sets each
// thread's access mode), because the slow-path accessor is reinstalled
// here for threads that were mid-slow-path.
func (st *StackTrack) RestoreState(s *State, runnerOf func(tid int) *Runner, opByID func(id int) *prog.Op) {
	st.slowCount = s.SlowCount
	for i := range s.Threads {
		cs := &s.Threads[i]
		ts := st.threads[cs.ID]
		if ts == nil {
			panic("core: RestoreState for unattached thread (different Config?)")
		}
		ts.freeSet = append(ts.freeSet[:0], cs.FreeSet...)
		ts.limits = copyTable(cs.Limits)
		ts.commitStreak = copyTable(cs.CommitStreak)
		ts.abortStreak = copyTable(cs.AbortStreak)
		ts.refsLen = cs.RefsLen
		ts.runner = nil
		t := st.sc.Threads()[cs.ID]
		t.Slow = slowAccessor{st: st}
		if cs.Runner != nil {
			r := runnerOf(cs.ID)
			r.RestoreState(cs.Runner, t, opByID)
			ts.runner = r
		}
	}
}
