// Package core implements the StackTrack framework of the paper: the split
// runtime that executes data-structure operations as a series of hardware
// transaction segments (Algorithm 2), the dynamic split-length predictor
// (§5.3), the FREE / SCAN_AND_FREE reclamation procedure with its
// scan-consistency protocol (Algorithm 1), and the software-only slow-path
// fallback with per-thread reference sets (Algorithm 5, §5.4).
package core

import (
	"fmt"

	"stacktrack/internal/alloc"
	"stacktrack/internal/cost"
	"stacktrack/internal/metrics"
	"stacktrack/internal/prog/dataflow"
	"stacktrack/internal/sched"
	"stacktrack/internal/word"
)

// Config tunes the StackTrack runtime. The zero value is replaced by
// Defaults.
type Config struct {
	// InitialLimit is the starting split length in basic blocks (§5.3
	// uses 50).
	InitialLimit int
	// MaxLimit caps how far the predictor may grow a segment.
	MaxLimit int
	// Streak is how many consecutive commits (aborts) a segment needs
	// before its limit is incremented (decremented); the paper uses 5.
	Streak int
	// MaxFree is the free-set size that triggers SCAN_AND_FREE
	// (Algorithm 1 line 3).
	MaxFree int
	// SlowFailThreshold is how many consecutive failures at a split
	// limit of one basic block force the segment onto the slow path.
	SlowFailThreshold int
	// ScanChunkWords bounds how many stack words one scheduler step of
	// the scanner inspects, so scans interleave with running threads and
	// the consistency-retry protocol is genuinely exercised.
	ScanChunkWords int
	// ForceSlowPct forces this percentage of operations to execute
	// entirely on the slow path (the paper's Figure 5 experiment).
	ForceSlowPct int
	// HashedScan selects the §5.2 free-procedure optimization: one pass
	// over all stacks building a hash set, instead of one pass per
	// pointer. See the ablation-scan experiment.
	HashedScan bool
	// Predictor selects the split-length policy: "additive" (the
	// paper's ±1, default) or "aimd" (halve on an abort streak,
	// increment on a commit streak — the faster-adapting variant the
	// paper's §7 suggests exploring).
	Predictor string
}

// Predictor policy names for Config.Predictor.
const (
	// PredictorAdditive is the paper's ±1 policy (the default).
	PredictorAdditive = "additive"
	// PredictorAIMD halves the limit on an abort streak.
	PredictorAIMD = "aimd"
)

// Defaults returns the paper's parameter choices.
func Defaults() Config {
	return Config{
		InitialLimit:      50,
		MaxLimit:          100,
		Streak:            5,
		MaxFree:           10,
		SlowFailThreshold: 10,
		ScanChunkWords:    64,
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.InitialLimit <= 0 {
		c.InitialLimit = d.InitialLimit
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = d.MaxLimit
	}
	if c.Streak <= 0 {
		c.Streak = d.Streak
	}
	if c.MaxFree <= 0 {
		c.MaxFree = d.MaxFree
	}
	if c.SlowFailThreshold <= 0 {
		c.SlowFailThreshold = d.SlowFailThreshold
	}
	if c.ScanChunkWords <= 0 {
		c.ScanChunkWords = d.ScanChunkWords
	}
	return c
}

// Stats aggregates StackTrack-specific counters for one thread, feeding the
// paper's Figures 4 and 5 and the scan-statistics table. It is a
// read-only view assembled from the metrics registry (see coreCounters).
type Stats struct {
	Segments      uint64 // committed split segments
	SegmentBlocks uint64 // basic blocks inside committed segments
	OpsFast       uint64 // operations completed entirely on the fast path
	OpsSlow       uint64 // operations that used the slow path
	Scans         uint64 // SCAN_AND_FREE invocations
	ScanRestarts  uint64 // per-thread inspection restarts (Alg. 1 line 27)
	ScannedWords  uint64 // stack/register/ref-set words inspected
	ScannedDepth  uint64 // stack words inspected (for avg stack depth)
	ElidedWords   uint64 // words skipped by the dataflow track mask
	ScanTargets   uint64 // (ptr, thread) inspections performed
	Frees         uint64 // objects handed to FREE
	Freed         uint64 // objects actually released to the allocator
	FalseHeld     uint64 // frees deferred because a reference was seen

	// SegLenHist buckets committed segment lengths by power of two:
	// [1], [2,3], [4,7], [8,15], ..., [128,∞) — the distribution behind
	// Figure 4's averages.
	SegLenHist [8]uint64
}

// HistBucket returns the SegLenHist index for a segment of n blocks.
// It is definitionally metrics.BucketOf with 8 buckets (pinned by a
// test), so the view over the registry histogram reproduces the
// original array exactly.
func HistBucket(n int) int {
	return metrics.BucketOf(uint64(n), 8)
}

// HistLabel names a SegLenHist bucket.
func HistLabel(b int) string {
	switch {
	case b <= 0:
		return "1"
	case b >= 7:
		return "128+"
	default:
		lo := 1 << b
		return fmt.Sprintf("%d-%d", lo, 2*lo-1)
	}
}

// tstate is the per-thread StackTrack context (the paper's ctx).
type tstate struct {
	freeSet []word.Addr

	// limits[opID][splitIdx] is the split-length table; streaks track
	// consecutive commit/abort runs per segment (§5.3).
	limits       [][]int32
	commitStreak [][]int32
	abortStreak  [][]int32

	refsLen int // Go mirror of the slow-path reference-set length

	runner *Runner // the thread's operation runner, for retire interception

	// Scan scratch buffers, borrowed by a starting scan (stolen so an
	// overlapping scan — e.g. Drain's sync scan racing a paused one —
	// falls back to fresh allocations) and handed back when it ends.
	scanPtrs  []word.Addr
	scanFound []bool
	scanHeld  map[word.Addr]struct{}
}

// coreCounters holds the StackTrack layer's metric handles.
type coreCounters struct {
	segments      *metrics.Counter
	segmentBlocks *metrics.Counter
	opsFast       *metrics.Counter
	opsSlow       *metrics.Counter
	scans         *metrics.Counter
	scanRestarts  *metrics.Counter
	scannedWords  *metrics.Counter
	scannedDepth  *metrics.Counter
	elidedWords   *metrics.Counter
	scanTargets   *metrics.Counter
	frees         *metrics.Counter
	freed         *metrics.Counter
	falseHeld     *metrics.Counter
	// wastedCycles counts virtual cycles spent in segments that
	// subsequently aborted — work hardware threw away. It is new with
	// the metrics subsystem (no legacy Stats field).
	wastedCycles *metrics.Counter
	segLenHist   *metrics.Histogram
	opCycles     *metrics.Histogram
}

func newCoreCounters(r *metrics.Registry) coreCounters {
	return coreCounters{
		segments:      r.Counter("core.segments"),
		segmentBlocks: r.Counter("core.segment_blocks"),
		opsFast:       r.Counter("core.ops_fast"),
		opsSlow:       r.Counter("core.ops_slow"),
		scans:         r.Counter("core.scans"),
		scanRestarts:  r.Counter("core.scan_restarts"),
		scannedWords:  r.Counter("core.scanned_words"),
		scannedDepth:  r.Counter("core.scanned_depth"),
		elidedWords:   r.Counter("core.elided_words"),
		scanTargets:   r.Counter("core.scan_targets"),
		frees:         r.Counter("core.frees"),
		freed:         r.Counter("core.freed"),
		falseHeld:     r.Counter("core.false_held"),
		wastedCycles:  r.Counter("core.wasted_cycles"),
		segLenHist:    r.Histogram("core.seg_len_blocks", 8),
		opCycles:      r.Histogram("ops.op_cycles", metrics.TimeHistBuckets),
	}
}

// StackTrack is the framework instance shared by all threads of a run. It
// implements sched.Reclaimer; operations must execute under its Runner
// rather than the plain runner.
type StackTrack struct {
	cfg Config
	sc  *sched.Scheduler
	al  *alloc.Allocator

	// slowCount is the global slow-path counter (§5.4): scans consult the
	// per-thread reference sets whenever it is non-zero.
	slowCount int

	// masks holds the per-operation scan track masks (see elide.go); nil
	// means every word is scanned.
	masks map[int]dataflow.TrackMask

	threads [64]*tstate

	c coreCounters
}

// New creates a StackTrack instance over a scheduler and allocator.
func New(sc *sched.Scheduler, al *alloc.Allocator, cfg Config) *StackTrack {
	return &StackTrack{
		cfg: cfg.withDefaults(), sc: sc, al: al,
		c: newCoreCounters(sc.M.Metrics()),
	}
}

// Name implements sched.Reclaimer.
func (st *StackTrack) Name() string { return "StackTrack" }

// Attach implements sched.Reclaimer. StackTrack threads maintain their
// exposed stack pointer so scanners know how deep to look.
func (st *StackTrack) Attach(t *sched.Thread) {
	st.threads[t.ID] = &tstate{}
	t.TrackSP = true
}

func (st *StackTrack) state(t *sched.Thread) *tstate {
	ts := st.threads[t.ID]
	if ts == nil {
		panic(fmt.Sprintf("core: thread %d not attached", t.ID))
	}
	return ts
}

// ThreadStats returns a snapshot of thread tid's StackTrack counters,
// assembled from the metric lanes.
func (st *StackTrack) ThreadStats(tid int) *Stats {
	c := &st.c
	s := &Stats{
		Segments:      c.segments.Lane(tid),
		SegmentBlocks: c.segmentBlocks.Lane(tid),
		OpsFast:       c.opsFast.Lane(tid),
		OpsSlow:       c.opsSlow.Lane(tid),
		Scans:         c.scans.Lane(tid),
		ScanRestarts:  c.scanRestarts.Lane(tid),
		ScannedWords:  c.scannedWords.Lane(tid),
		ScannedDepth:  c.scannedDepth.Lane(tid),
		ElidedWords:   c.elidedWords.Lane(tid),
		ScanTargets:   c.scanTargets.Lane(tid),
		Frees:         c.frees.Lane(tid),
		Freed:         c.freed.Lane(tid),
		FalseHeld:     c.falseHeld.Lane(tid),
	}
	for i := range s.SegLenHist {
		s.SegLenHist[i] = c.segLenHist.LaneBucket(tid, i)
	}
	return s
}

// TotalStats sums StackTrack counters across threads.
func (st *StackTrack) TotalStats() Stats {
	c := &st.c
	s := Stats{
		Segments:      c.segments.Value(),
		SegmentBlocks: c.segmentBlocks.Value(),
		OpsFast:       c.opsFast.Value(),
		OpsSlow:       c.opsSlow.Value(),
		Scans:         c.scans.Value(),
		ScanRestarts:  c.scanRestarts.Value(),
		ScannedWords:  c.scannedWords.Value(),
		ScannedDepth:  c.scannedDepth.Value(),
		ElidedWords:   c.elidedWords.Value(),
		ScanTargets:   c.scanTargets.Value(),
		Frees:         c.frees.Value(),
		Freed:         c.freed.Value(),
		FalseHeld:     c.falseHeld.Value(),
	}
	for i := range s.SegLenHist {
		s.SegLenHist[i] = c.segLenHist.Bucket(i)
	}
	return s
}

// ResetStats zeroes all StackTrack counters (between measurement phases).
// Predictor state is preserved — convergence carries across phases.
func (st *StackTrack) ResetStats() {
	c := &st.c
	c.segments.Reset()
	c.segmentBlocks.Reset()
	c.opsFast.Reset()
	c.opsSlow.Reset()
	c.scans.Reset()
	c.scanRestarts.Reset()
	c.scannedWords.Reset()
	c.scannedDepth.Reset()
	c.elidedWords.Reset()
	c.scanTargets.Reset()
	c.frees.Reset()
	c.freed.Reset()
	c.falseHeld.Reset()
	c.wastedCycles.Reset()
	c.segLenHist.Reset()
	c.opCycles.Reset()
}

// AvgSegmentLimit reports the predictor's current average split length
// across all threads and segments (Figure 4's "average split lengths").
func (st *StackTrack) AvgSegmentLimit() float64 {
	var sum float64
	n := 0
	for _, ts := range st.threads {
		if ts == nil {
			continue
		}
		if a := ts.avgLimit(); a > 0 {
			sum += a
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BeginOp implements sched.Reclaimer: register in the activity array and
// bump the operation counter. The ordering fence is issued once, by the
// runner's SPLIT_INIT (Algorithm 2).
func (st *StackTrack) BeginOp(t *sched.Thread, opID int) {
	t.StorePlain(t.ActivityAddr(), uint64(opID)+1)
	t.StorePlain(t.OperCntAddr(), t.M.Peek(t.OperCntAddr())+1)
}

// EndOp implements sched.Reclaimer: deregister and bump the counter so
// in-flight scans of this thread stop retrying (Alg. 1 line 25).
func (st *StackTrack) EndOp(t *sched.Thread) {
	t.StorePlain(t.OperCntAddr(), t.M.Peek(t.OperCntAddr())+1)
	t.StorePlain(t.ActivityAddr(), 0)
}

// ProtectLoad implements sched.Reclaimer. StackTrack needs no per-load
// protection: visibility comes from the transaction's data set, so this is
// an ordinary (mode-dispatched) load — the whole point of the scheme.
func (st *StackTrack) ProtectLoad(t *sched.Thread, _ int, src word.Addr) uint64 {
	return t.Load(src)
}

// Protect implements sched.Reclaimer: StackTrack needs no extra guards —
// references are visible wherever they live (stack, registers, data sets).
func (st *StackTrack) Protect(*sched.Thread, int, word.Addr) {}

// Retire implements sched.Reclaimer. When called inside an active segment
// the node is parked on the runner until the segment — and with it the
// unlink — commits; were it enqueued directly, an abort would roll back the
// unlink while the node sat in the free set. Outside a transaction (slow
// path, plain phases) it enters the free set immediately.
func (st *StackTrack) Retire(t *sched.Thread, p word.Addr) {
	ts := st.state(t)
	st.c.frees.Inc(t.ID)
	if ts.runner != nil && ts.runner.inTx {
		ts.runner.retireInTx(p)
		return
	}
	ts.freeSet = append(ts.freeSet, p)
}

// NeedScan reports whether the thread's free set has reached the scan
// threshold (Algorithm 1 line 3).
func (st *StackTrack) NeedScan(t *sched.Thread) bool {
	return len(st.state(t).freeSet) > st.cfg.MaxFree
}

// Drain implements sched.Reclaimer: run complete scans until the free set
// stops shrinking (references parked on other threads' stacks keep their
// nodes alive until those threads go idle).
func (st *StackTrack) Drain(t *sched.Thread) {
	ts := st.state(t)
	for {
		before := len(ts.freeSet)
		if before == 0 {
			return
		}
		st.scanAndFreeSync(t)
		if len(ts.freeSet) >= before {
			return
		}
	}
}

// PendingFrees returns how many retired nodes thread t still holds.
func (st *StackTrack) PendingFrees(t *sched.Thread) int {
	return len(st.state(t).freeSet)
}

// chargeWords charges the scan cost of inspecting n words.
func chargeWords(t *sched.Thread, n int) {
	t.Charge(cost.Cycles(n) * cost.ScanWord)
}
