package core

// Scan elision driven by static dataflow facts. A track mask (computed by
// internal/prog/dataflow from per-block effect annotations) names the frame
// slots and registers of an operation that can ever hold a live heap
// pointer. During SCAN_AND_FREE the scanner looks up the victim's current
// operation in the activity array and skips:
//
//   - stack words below the operation's frame (garbage left by popped
//     frames of completed operations — nothing lives there by definition),
//   - frame slots the mask proves are never a live pointer (scalars,
//     must-killed entry garbage, dead recordings),
//   - registers the mask excludes (the driver convention seeds R0-R3 with
//     scalar arguments; R4-R15 are never written by any shipped op).
//
// Soundness leans on the same protocol the full scan uses: a reference the
// victim holds continuously is either visible in a tracked word or the
// victim's split/oper counters move and the inspection restarts. Slow-path
// reference sets are never elided — they are the explicit spill area.
//
// The mask applies across an operation switch mid-scan: a word elided
// under operation A's mask cannot hold a continuously-held reference to a
// retired node, and an operation B starting later cannot reach a retired
// (unlinked) node at all, so B needs no words preserved on its behalf.

import (
	"stacktrack/internal/prog/dataflow"
	"stacktrack/internal/sched"
)

// SetMasks installs per-operation track masks keyed by operation ID. A nil
// or missing entry means the operation is scanned in full. Masks are
// consulted only by scans that start after the call; installing them at
// setup (before threads run) is the intended use.
func (st *StackTrack) SetMasks(masks map[int]dataflow.TrackMask) {
	st.masks = masks
}

// victimMask resolves the scan mask for victim v given its sampled
// activity word and exposed stack pointer. It returns nil (scan
// everything) when no mask is installed for the running operation or the
// frame geometry does not line up (no frame pushed yet).
func (st *StackTrack) victimMask(act uint64, sp int) (m *dataflow.TrackMask, fbase int) {
	if st.masks == nil || act == 0 {
		return nil, 0
	}
	mk, ok := st.masks[int(act)-1]
	if !ok {
		return nil, 0
	}
	fbase = sp - mk.FrameWords
	if fbase < 0 || len(mk.Frame) != mk.FrameWords {
		return nil, 0
	}
	return &mk, fbase
}

// maskTracksStack reports whether stack word pos must be inspected under
// mask m with the frame based at fbase. Words below the frame are popped-
// frame garbage and never inspected.
func maskTracksStack(m *dataflow.TrackMask, fbase, pos int) bool {
	if pos < fbase {
		return false
	}
	i := pos - fbase
	if i >= len(m.Frame) {
		return true // beyond the declared frame: scan conservatively
	}
	return m.Frame[i]
}

// maskTracksReg reports whether register r must be inspected.
func maskTracksReg(m *dataflow.TrackMask, r int) bool {
	if r < 0 || r >= sched.NumRegs {
		return true
	}
	return m.Regs[r]
}
