package core

import (
	"testing"

	"stacktrack/internal/word"
)

// The hashed scan (§5.2) must reach exactly the same free/defer decisions
// as the per-pointer Algorithm 1 scan.

func TestHashedScanFreesUnreferenced(t *testing.T) {
	w := newWorld(t, 2, Config{HashedScan: true})
	scanner := w.ts[0]
	obj := w.al.Alloc(0, 4)
	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if w.al.IsAllocated(obj) {
		t.Fatal("unreferenced object not freed by hashed scan")
	}
}

func TestHashedScanDefersReferences(t *testing.T) {
	w := newWorld(t, 2, Config{HashedScan: true})
	scanner, holder := w.ts[0], w.ts[1]
	stackObj := w.al.Alloc(0, 4)
	regObj := w.al.Alloc(0, 4)
	interior := w.al.Alloc(0, 16)
	free := w.al.Alloc(0, 4)

	w.m.Poke(holder.StackBase+2, uint64(stackObj))
	w.m.Poke(holder.RegsBase+3, uint64(regObj))
	w.m.Poke(holder.StackBase+5, uint64(interior)+7) // interior pointer
	fakeActive(w.m, holder, 16)

	for _, p := range []word.Addr{stackObj, regObj, interior, free} {
		w.st.Retire(scanner, p)
	}
	w.st.scanAndFreeSync(scanner)

	if !w.al.IsAllocated(stackObj) || !w.al.IsAllocated(regObj) || !w.al.IsAllocated(interior) {
		t.Fatal("hashed scan freed a referenced object")
	}
	if w.al.IsAllocated(free) {
		t.Fatal("hashed scan failed to free the unreferenced object")
	}
	if w.st.PendingFrees(scanner) != 3 {
		t.Fatalf("pending = %d, want 3", w.st.PendingFrees(scanner))
	}

	// Everything reclaims once the holder goes idle.
	w.m.Poke(holder.ActivityAddr(), 0)
	w.st.scanAndFreeSync(scanner)
	if w.st.PendingFrees(scanner) != 0 {
		t.Fatal("hashed scan did not drain after holder went idle")
	}
}

func TestHashedScanReadsRefSets(t *testing.T) {
	w := newWorld(t, 2, Config{HashedScan: true})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	w.st.slowCount = 1
	fakeActive(w.m, holder, 0)
	w.m.Poke(holder.RefsBase, uint64(obj))
	w.m.Poke(holder.RefsLenAddr(), 1)
	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if !w.al.IsAllocated(obj) {
		t.Fatal("hashed scan ignored a slow-path reference set")
	}
	w.st.slowCount = 0
}

func TestHashedScanConsistencyRestart(t *testing.T) {
	w := newWorld(t, 2, Config{HashedScan: true, ScanChunkWords: 4})
	scanner, victim := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	fakeActive(w.m, victim, 64)
	w.st.Retire(scanner, obj)

	s := w.st.startHashedScan(scanner)
	for s.phase != phaseStack {
		if s.step(scanner) {
			t.Fatal("scan finished prematurely")
		}
	}
	s.step(scanner)
	w.m.Poke(victim.SplitsAddr(), w.m.Peek(victim.SplitsAddr())+1)
	for !s.step(scanner) {
	}
	if w.st.ThreadStats(0).ScanRestarts == 0 {
		t.Fatal("hashed scan skipped the consistency retry protocol")
	}
}

func TestAIMDPredictorHalves(t *testing.T) {
	cfg := Config{InitialLimit: 48, Streak: 1, Predictor: PredictorAIMD}.withDefaults()
	ts := &tstate{}
	ts.onSegAbort(cfg, 0, 0)
	if got := ts.segLimit(cfg, 0, 0); got != 24 {
		t.Fatalf("after one abort streak: %d, want 24", got)
	}
	for i := 0; i < 10; i++ {
		ts.onSegAbort(cfg, 0, 0)
	}
	if got := ts.segLimit(cfg, 0, 0); got != 1 {
		t.Fatalf("AIMD floor violated: %d", got)
	}
	ts.onSegCommit(cfg, 0, 0)
	if got := ts.segLimit(cfg, 0, 0); got != 2 {
		t.Fatalf("AIMD additive increase broken: %d", got)
	}
}

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		n, bucket int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {15, 3},
		{16, 4}, {32, 5}, {50, 5}, {64, 6}, {127, 6}, {128, 7}, {100000, 7},
	}
	for _, c := range cases {
		if got := HistBucket(c.n); got != c.bucket {
			t.Errorf("HistBucket(%d) = %d, want %d", c.n, got, c.bucket)
		}
	}
	if HistLabel(0) != "1" || HistLabel(7) != "128+" || HistLabel(5) != "32-63" {
		t.Errorf("labels wrong: %q %q %q", HistLabel(0), HistLabel(7), HistLabel(5))
	}
}

func TestHistogramAccumulates(t *testing.T) {
	w := newWorld(t, 1, Config{InitialLimit: 10})
	th := w.ts[0]
	r := NewRunner(w.st)
	runOp(t, th, r, loopOp(0, 35))
	var total uint64
	for _, n := range w.st.TotalStats().SegLenHist {
		total += n
	}
	if total != w.st.TotalStats().Segments {
		t.Fatalf("histogram total %d != segments %d", total, w.st.TotalStats().Segments)
	}
}
