package core

import (
	"testing"
	"testing/quick"

	"stacktrack/internal/mem"
	"stacktrack/internal/prog"
	"stacktrack/internal/rng"
	"stacktrack/internal/sched"
)

// TestRunnerSurvivesRandomDoomProperty: whatever pattern of transaction
// dooms (conflict, capacity, preempt) is injected between steps, every
// operation must finish with the right result and the predictor tables must
// stay within bounds.
func TestRunnerSurvivesRandomDoomProperty(t *testing.T) {
	run := func(seed uint64) bool {
		w := newWorld(t, 1, Config{InitialLimit: 8, Streak: 2, SlowFailThreshold: 3})
		th := w.ts[0]
		r := NewRunner(w.st)
		rnd := rng.New(seed)
		reasons := []mem.AbortReason{mem.Conflict, mem.Capacity, mem.Preempt}

		for op := 0; op < 20; op++ {
			n := 1 + rnd.Intn(40)
			lop := loopOp(rnd.Intn(3), n)
			r.Start(th, lop)
			for i := 0; ; i++ {
				if i > 1_000_000 {
					t.Log("operation did not terminate")
					return false
				}
				if rnd.Intn(4) == 0 {
					w.m.AbortTx(th.ID, reasons[rnd.Intn(len(reasons))])
				}
				if r.Step(th) {
					break
				}
			}
			if int(th.Reg(prog.RegResult)) != n {
				t.Logf("op result %d, want %d", th.Reg(prog.RegResult), n)
				return false
			}
		}
		// Predictor invariants: every limit within [1, MaxLimit].
		ts := w.st.state(th)
		for _, row := range ts.limits {
			for _, l := range row {
				if l < 1 || int(l) > w.st.cfg.MaxLimit {
					t.Logf("limit %d out of bounds", l)
					return false
				}
			}
		}
		// Histogram total matches committed segments.
		var hist uint64
		for _, n := range w.st.TotalStats().SegLenHist {
			hist += n
		}
		if hist != w.st.TotalStats().Segments {
			t.Log("histogram diverged from segment count")
			return false
		}
		return w.st.slowCount == 0 // balanced even if ops fell back
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestScanFalsePositive: a stack word that merely *looks like* a pointer
// (a data value equal to a heap address) defers the free — the conservative
// behaviour the paper shares with conservative GC (§5.2: "the scan may
// result in false positives ... this does not effect correctness").
func TestScanFalsePositive(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	// The holder stores the object's address as an integer VALUE (not a
	// reference it will ever dereference).
	w.m.Poke(holder.StackBase+1, uint64(obj))
	fakeActive(w.m, holder, 4)

	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if !w.al.IsAllocated(obj) {
		t.Fatal("false positive should conservatively defer the free")
	}
	if w.st.ThreadStats(0).FalseHeld == 0 {
		t.Fatal("deferred free not counted")
	}
	// The value disappears; the free proceeds on the next scan.
	w.m.Poke(holder.StackBase+1, 12345)
	w.st.scanAndFreeSync(scanner)
	if w.al.IsAllocated(obj) {
		t.Fatal("free still deferred after the value vanished")
	}
}

// TestOpIDsIndependentPredictors: operations with different ids keep
// independent limit tables even when interleaved on one thread.
func TestOpIDsIndependentPredictors(t *testing.T) {
	w := newWorld(t, 1, Config{InitialLimit: 10, Streak: 1})
	th := w.ts[0]
	r := NewRunner(w.st)

	// Run op 0 with constant sabotage so its limits shrink.
	sabotage := true
	b := prog.NewBuilder()
	lbEnd := b.Label()
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		if sabotage && t.Mode == sched.ModeFast {
			w.m.AbortTx(t.ID, mem.Capacity)
		}
		return *lbEnd
	})
	b.Bind(lbEnd)
	b.Add(func(t *sched.Thread, f sched.Frame) int { return prog.Done })
	hostile := b.Build(0, "test.Hostile", 1)

	for i := 0; i < 3; i++ {
		runOp(t, th, r, hostile)
	}
	sabotage = false
	runOp(t, th, r, loopOp(1, 20)) // benign op with a different id

	ts := w.st.state(th)
	if ts.segLimit(w.st.cfg, 0, 0) >= 10 {
		t.Fatal("hostile op's limit did not shrink")
	}
	// The benign op's limit may have grown (commit streaks at Streak=1)
	// but must never have inherited the hostile op's decrements.
	if ts.segLimit(w.st.cfg, 1, 0) < 10 {
		t.Fatal("benign op's limit was shrunk by the hostile op")
	}
}
