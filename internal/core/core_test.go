package core

import (
	"testing"

	"stacktrack/internal/alloc"
	"stacktrack/internal/cost"
	"stacktrack/internal/mem"
	"stacktrack/internal/prog"
	"stacktrack/internal/rng"
	"stacktrack/internal/sched"
	"stacktrack/internal/topo"
	"stacktrack/internal/word"
)

// world is a minimal StackTrack test fixture.
type world struct {
	m  *mem.Memory
	al *alloc.Allocator
	sc *sched.Scheduler
	st *StackTrack
	ts []*sched.Thread
}

// idleStepper satisfies sched.Stepper for threads the tests drive by hand.
type idleStepper struct{}

func (idleStepper) Step(*sched.Thread) bool { return true }

func newWorld(t *testing.T, nThreads int, cfg Config) *world {
	t.Helper()
	m := mem.New(mem.Config{Words: 1 << 18})
	al := alloc.New(m)
	sc := sched.NewScheduler(m, topo.Haswell8Way(), 1)
	st := New(sc, al, cfg)
	w := &world{m: m, al: al, sc: sc, st: st}
	seed := uint64(42)
	for i := 0; i < nThreads; i++ {
		th := sched.NewThread(i, m, al, rng.Splitmix64(&seed))
		th.Scheme = st
		st.Attach(th)
		// Register with the scheduler so scans see the thread in the
		// activity array; the tests step threads directly.
		sc.AddThread(th, idleStepper{})
		w.ts = append(w.ts, th)
	}
	return w
}

// --- Predictor ---------------------------------------------------------------

func TestPredictorStreaks(t *testing.T) {
	cfg := Defaults()
	ts := &tstate{}
	if got := ts.segLimit(cfg, 0, 0); got != cfg.InitialLimit {
		t.Fatalf("initial limit %d, want %d", got, cfg.InitialLimit)
	}
	// Five consecutive aborts decrement by one.
	for i := 0; i < cfg.Streak; i++ {
		ts.onSegAbort(cfg, 0, 0)
	}
	if got := ts.segLimit(cfg, 0, 0); got != cfg.InitialLimit-1 {
		t.Fatalf("after abort streak: %d, want %d", got, cfg.InitialLimit-1)
	}
	// A commit breaks an abort streak.
	for i := 0; i < cfg.Streak-1; i++ {
		ts.onSegAbort(cfg, 0, 0)
	}
	ts.onSegCommit(cfg, 0, 0)
	for i := 0; i < cfg.Streak-1; i++ {
		ts.onSegAbort(cfg, 0, 0)
	}
	if got := ts.segLimit(cfg, 0, 0); got != cfg.InitialLimit-1 {
		t.Fatalf("broken streak still decremented: %d", got)
	}
	// Five consecutive commits increment.
	for i := 0; i < cfg.Streak; i++ {
		ts.onSegCommit(cfg, 0, 0)
	}
	if got := ts.segLimit(cfg, 0, 0); got != cfg.InitialLimit {
		t.Fatalf("after commit streak: %d, want %d", got, cfg.InitialLimit)
	}
}

func TestPredictorFloorAndCeiling(t *testing.T) {
	cfg := Config{InitialLimit: 2, MaxLimit: 3, Streak: 1}.withDefaults()
	ts := &tstate{}
	for i := 0; i < 10; i++ {
		ts.onSegAbort(cfg, 0, 0)
	}
	if got := ts.segLimit(cfg, 0, 0); got != 1 {
		t.Fatalf("floor violated: %d", got)
	}
	for i := 0; i < 10; i++ {
		ts.onSegCommit(cfg, 0, 0)
	}
	if got := ts.segLimit(cfg, 0, 0); got != cfg.MaxLimit {
		t.Fatalf("ceiling violated: %d", got)
	}
}

func TestPredictorPerSegmentIndependence(t *testing.T) {
	cfg := Defaults()
	ts := &tstate{}
	for i := 0; i < cfg.Streak; i++ {
		ts.onSegAbort(cfg, 3, 7)
	}
	if ts.segLimit(cfg, 3, 7) != cfg.InitialLimit-1 {
		t.Fatal("segment (3,7) not decremented")
	}
	if ts.segLimit(cfg, 3, 6) != cfg.InitialLimit {
		t.Fatal("unrelated segment affected")
	}
	if ts.segLimit(cfg, 2, 7) != cfg.InitialLimit {
		t.Fatal("unrelated op affected")
	}
}

// --- Runner ------------------------------------------------------------------

// loopOp builds an operation of n simple blocks, each bumping a frame slot,
// leaving the count in R0.
func loopOp(id, n int) *prog.Op {
	b := prog.NewBuilder()
	lbNext := b.Label()
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		f.Set(0, 0)
		return *lbNext
	})
	b.Bind(lbNext)
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		c := f.Get(0) + 1
		f.Set(0, c)
		if int(c) >= n {
			t.SetReg(prog.RegResult, c)
			return prog.Done
		}
		return *lbNext
	})
	return b.Build(id, "test.Loop", 1)
}

func runOp(t *testing.T, th *sched.Thread, r prog.Runner, op *prog.Op) {
	t.Helper()
	r.Start(th, op)
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatal("operation did not terminate")
		}
		if r.Step(th) {
			return
		}
	}
}

func TestRunnerSplitsLongOperation(t *testing.T) {
	w := newWorld(t, 1, Config{InitialLimit: 10})
	th := w.ts[0]
	r := NewRunner(w.st)
	runOp(t, th, r, loopOp(0, 95))
	if th.Reg(prog.RegResult) != 95 {
		t.Fatalf("result %d, want 95", th.Reg(prog.RegResult))
	}
	st := w.st.ThreadStats(0)
	// 96 blocks at limit 10 => at least 9 committed segments.
	if st.Segments < 9 {
		t.Fatalf("segments = %d, want >= 9", st.Segments)
	}
	if st.OpsFast != 1 || st.OpsSlow != 0 {
		t.Fatalf("ops fast/slow = %d/%d", st.OpsFast, st.OpsSlow)
	}
	// The in-memory split counter reflects the committed segments
	// (reset at SPLIT_INIT, bumped per non-final commit).
	if got := w.m.Peek(th.SplitsAddr()); got == 0 {
		t.Fatal("split counter never exposed")
	}
}

func TestRunnerExposesRegistersAtSplit(t *testing.T) {
	w := newWorld(t, 1, Config{InitialLimit: 4})
	th := w.ts[0]
	r := NewRunner(w.st)
	op := func() *prog.Op {
		b := prog.NewBuilder()
		lbNext := b.Label()
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			f.Set(0, 0)
			t.SetReg(5, 0xBEE)
			return *lbNext
		})
		b.Bind(lbNext)
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			c := f.Get(0) + 1
			f.Set(0, c)
			if c >= 20 {
				return prog.Done
			}
			return *lbNext
		})
		return b.Build(0, "test.Regs", 1)
	}()
	runOp(t, th, r, op)
	if w.m.Peek(th.RegsBase+5) != 0xBEE {
		t.Fatal("register 5 never exposed to simulated memory")
	}
}

func TestRunnerAbortRestartsSegment(t *testing.T) {
	w := newWorld(t, 2, Config{InitialLimit: 50})
	victim, attacker := w.ts[0], w.ts[1]
	shared := w.al.Static(1)
	w.al.Alloc(0, 2) // open heap so Static would now fail loudly if misused

	r := NewRunner(w.st)
	reads := 0
	op := func() *prog.Op {
		b := prog.NewBuilder()
		lbNext := b.Label()
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			f.Set(0, 0)
			return *lbNext
		})
		b.Bind(lbNext)
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			_ = t.Load(shared)
			reads++
			c := f.Get(0) + 1
			f.Set(0, c)
			if c >= 10 {
				t.SetReg(prog.RegResult, c)
				return prog.Done
			}
			return *lbNext
		})
		return b.Build(0, "test.Shared", 1)
	}()

	r.Start(victim, op)
	stepped := 0
	for !r.Step(victim) {
		stepped++
		if stepped == 3 {
			// Conflict: the attacker writes the line the victim read.
			attacker.StorePlain(shared, 1)
		}
		if stepped > 100000 {
			t.Fatal("no termination")
		}
	}
	if victim.Reg(prog.RegResult) != 10 {
		t.Fatalf("result %d, want 10 despite abort", victim.Reg(prog.RegResult))
	}
	if w.m.Stats(0).ConflictAborts == 0 {
		t.Fatal("no conflict abort recorded")
	}
	// The counter in the frame must have been rolled back and re-run:
	// more raw reads than the 10 loop iterations.
	if reads <= 10 {
		t.Fatalf("reads = %d; aborted work should have re-executed", reads)
	}
}

func TestRetireDeferredUntilCommit(t *testing.T) {
	w := newWorld(t, 1, Config{InitialLimit: 50, MaxFree: 1000})
	th := w.ts[0]
	obj := w.al.Alloc(0, 4)
	r := NewRunner(w.st)
	op := func() *prog.Op {
		b := prog.NewBuilder()
		lbEnd := b.Label()
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			t.Retire(obj)
			// Mid-transaction: the node must not be in the free set
			// yet (the unlink has not committed).
			if len(w.st.state(t).freeSet) != 0 {
				t.SetReg(prog.RegResult, 999)
			}
			return *lbEnd
		})
		b.Bind(lbEnd)
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			return prog.Done
		})
		return b.Build(0, "test.Retire", 1)
	}()
	runOp(t, th, r, op)
	if th.Reg(prog.RegResult) == 999 {
		t.Fatal("retire entered the free set inside an uncommitted segment")
	}
	if got := w.st.PendingFrees(th); got != 1 {
		t.Fatalf("pending frees = %d, want 1", got)
	}
}

func TestRetireRolledBackOnAbort(t *testing.T) {
	w := newWorld(t, 2, Config{InitialLimit: 50, MaxFree: 1000})
	victim := w.ts[0]
	obj := w.al.Alloc(0, 4)

	r := NewRunner(w.st)
	attempts := 0
	sabotage := true
	op := func() *prog.Op {
		b := prog.NewBuilder()
		lbEnd := b.Label()
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			attempts++
			t.Retire(obj)
			if sabotage {
				// Doom the enclosing transaction after the retire:
				// the segment's commit will fail and the pending
				// retire must be rolled back with it.
				sabotage = false
				w.m.AbortTx(t.ID, mem.Conflict)
			}
			return *lbEnd
		})
		b.Bind(lbEnd)
		b.Add(func(t *sched.Thread, f sched.Frame) int { return prog.Done })
		return b.Build(0, "test.RetireAbort", 1)
	}()

	r.Start(victim, op)
	for !r.Step(victim) {
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one aborted, one committed)", attempts)
	}
	if got := w.st.PendingFrees(victim); got != 1 {
		t.Fatalf("pending frees = %d, want exactly 1 (no double retire)", got)
	}
}

// --- Scan --------------------------------------------------------------------

// fakeActive marks thread th as mid-operation with an exposed stack of n
// words.
func fakeActive(m *mem.Memory, th *sched.Thread, sp int) {
	m.Poke(th.ActivityAddr(), 1)
	m.Poke(th.SPAddr(), uint64(sp))
}

func TestScanFreesUnreferenced(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner := w.ts[0]
	obj := w.al.Alloc(0, 4)
	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if w.al.IsAllocated(obj) {
		t.Fatal("unreferenced object not freed")
	}
	if w.st.PendingFrees(scanner) != 0 {
		t.Fatal("free set not emptied")
	}
}

func TestScanDefersStackReference(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	// The holder's exposed stack contains a pointer to obj.
	w.m.Poke(holder.StackBase+3, uint64(obj))
	fakeActive(w.m, holder, 8)

	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if !w.al.IsAllocated(obj) {
		t.Fatal("object freed while a stack reference exists")
	}
	if w.st.PendingFrees(scanner) != 1 {
		t.Fatal("deferred pointer should stay in the free set")
	}

	// Once the holder goes idle, the next scan reclaims.
	w.m.Poke(holder.ActivityAddr(), 0)
	w.st.scanAndFreeSync(scanner)
	if w.al.IsAllocated(obj) {
		t.Fatal("object not freed after holder went idle")
	}
}

func TestScanSeesMarkedPointers(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	w.m.Poke(holder.StackBase, word.Mark(obj))
	fakeActive(w.m, holder, 4)
	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if !w.al.IsAllocated(obj) {
		t.Fatal("marked pointer in stack not recognized")
	}
}

func TestScanDefersRegisterReference(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	w.m.Poke(holder.RegsBase+7, uint64(obj))
	fakeActive(w.m, holder, 0)
	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if !w.al.IsAllocated(obj) {
		t.Fatal("object freed while a register reference exists")
	}
}

func TestScanResolvesInteriorPointers(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 16) // array-like object
	w.m.Poke(holder.StackBase, uint64(obj)+5)
	fakeActive(w.m, holder, 2)
	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if !w.al.IsAllocated(obj) {
		t.Fatal("interior pointer (§5.5 hidden pointer) not recognized")
	}
}

func TestScanSkipsIdleThreads(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	// Reference exists but the holder is idle (activity 0): its locals
	// are dead, so the object is reclaimable and the scan must skip the
	// thread entirely.
	w.m.Poke(holder.StackBase, uint64(obj))
	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if w.al.IsAllocated(obj) {
		t.Fatal("object held by an idle thread's dead stack not freed")
	}
}

func TestScanConsistencyRestart(t *testing.T) {
	w := newWorld(t, 2, Config{ScanChunkWords: 4})
	scanner, victim := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	fakeActive(w.m, victim, 64) // a stack large enough for several chunks
	w.st.Retire(scanner, obj)

	s := w.st.startPtrScan(scanner)
	// Step until the stack phase has begun.
	for s.phase != phaseStack {
		if s.step(scanner) {
			t.Fatal("scan finished prematurely")
		}
	}
	s.step(scanner) // scan one chunk
	// The victim commits a segment mid-inspection: split counter bumps
	// while its operation counter stays put.
	w.m.Poke(victim.SplitsAddr(), w.m.Peek(victim.SplitsAddr())+1)
	for !s.step(scanner) {
	}
	if w.st.ThreadStats(0).ScanRestarts == 0 {
		t.Fatal("scan did not restart after a concurrent segment commit (Alg. 1 line 27)")
	}
	if w.al.IsAllocated(obj) {
		t.Fatal("object should be freed after consistent re-inspection")
	}
}

func TestScanSkipsRetryWhenOperationChanged(t *testing.T) {
	w := newWorld(t, 2, Config{ScanChunkWords: 4})
	scanner, victim := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	fakeActive(w.m, victim, 64)
	w.st.Retire(scanner, obj)

	s := w.st.startPtrScan(scanner)
	for s.phase != phaseStack {
		s.step(scanner)
	}
	s.step(scanner)
	// Both counters change: the operation completed, no retry needed.
	w.m.Poke(victim.SplitsAddr(), w.m.Peek(victim.SplitsAddr())+1)
	w.m.Poke(victim.OperCntAddr(), w.m.Peek(victim.OperCntAddr())+1)
	for !s.step(scanner) {
	}
	if w.st.ThreadStats(0).ScanRestarts != 0 {
		t.Fatal("scan retried although the victim's operation completed (Alg. 1 line 25)")
	}
}

func TestDrainFreesEverything(t *testing.T) {
	w := newWorld(t, 2, Config{})
	th := w.ts[0]
	var objs []word.Addr
	for i := 0; i < 50; i++ {
		p := w.al.Alloc(0, 4)
		objs = append(objs, p)
		w.st.Retire(th, p)
	}
	w.st.Drain(th)
	for _, p := range objs {
		if w.al.IsAllocated(p) {
			t.Fatal("Drain left allocated garbage")
		}
	}
}

// --- Slow path ----------------------------------------------------------------

func TestForcedSlowPathCompletesAndClearsRefs(t *testing.T) {
	w := newWorld(t, 1, Config{ForceSlowPct: 100})
	th := w.ts[0]
	shared := w.al.Static(8)
	r := NewRunner(w.st)
	op := func() *prog.Op {
		b := prog.NewBuilder()
		lbEnd := b.Label()
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			for i := word.Addr(0); i < 8; i++ {
				_ = t.Load(shared + i)
			}
			return *lbEnd
		})
		b.Bind(lbEnd)
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			if w.m.Peek(t.RefsLenAddr()) == 0 {
				t.SetReg(prog.RegResult, 888) // refs should be live here
			}
			return prog.Done
		})
		return b.Build(0, "test.Slow", 1)
	}()
	runOp(t, th, r, op)
	if th.Reg(prog.RegResult) == 888 {
		t.Fatal("SLOW_READ did not populate the reference set during the op")
	}
	if w.m.Peek(th.RefsLenAddr()) != 0 {
		t.Fatal("SLOW_COMMIT did not clear the reference set")
	}
	st := w.st.ThreadStats(0)
	if st.OpsSlow != 1 || st.OpsFast != 0 {
		t.Fatalf("ops fast/slow = %d/%d, want 0/1", st.OpsFast, st.OpsSlow)
	}
	if w.st.slowCount != 0 {
		t.Fatal("global slow-path counter not balanced")
	}
}

func TestScanReadsRefSetsWhenSlowActive(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	// Holder is on the slow path with obj in its reference set.
	w.st.slowCount = 1
	fakeActive(w.m, holder, 0)
	w.m.Poke(holder.RefsBase, uint64(obj))
	w.m.Poke(holder.RefsLenAddr(), 1)

	w.st.Retire(scanner, obj)
	w.st.scanAndFreeSync(scanner)
	if !w.al.IsAllocated(obj) {
		t.Fatal("object freed while referenced from a slow-path reference set")
	}
	w.st.slowCount = 0
	w.m.Poke(holder.RefsLenAddr(), 0)
	w.st.scanAndFreeSync(scanner)
	if w.al.IsAllocated(obj) {
		t.Fatal("object not freed after reference set cleared")
	}
}

func TestFallbackToSlowPathOnPersistentAborts(t *testing.T) {
	w := newWorld(t, 2, Config{InitialLimit: 3, Streak: 1, SlowFailThreshold: 3, MaxFree: 1000})
	victim, attacker := w.ts[0], w.ts[1]
	shared := w.al.Static(1)

	r := NewRunner(w.st)
	done := false
	op := func() *prog.Op {
		b := prog.NewBuilder()
		lbEnd := b.Label()
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			_ = t.Load(shared)
			if t.Mode == sched.ModeFast {
				// Sabotage every hardware attempt; the predictor
				// must shrink the segment to one block and then
				// jump to the slow path.
				w.m.AbortTx(t.ID, mem.Conflict)
			}
			return *lbEnd
		})
		b.Bind(lbEnd)
		b.Add(func(t *sched.Thread, f sched.Frame) int {
			done = true
			return prog.Done
		})
		return b.Build(0, "test.Fallback", 1)
	}()

	r.Start(victim, op)
	for i := 0; !r.Step(victim); i++ {
		_ = attacker
		if i > 100000 {
			t.Fatal("runner never fell back")
		}
	}
	if !done {
		t.Fatal("operation did not complete")
	}
	if w.st.ThreadStats(0).OpsSlow != 1 {
		t.Fatal("operation should have completed on the slow path")
	}
}

func TestOpIDRandomSlowFraction(t *testing.T) {
	w := newWorld(t, 1, Config{ForceSlowPct: 50})
	th := w.ts[0]
	r := NewRunner(w.st)
	for i := 0; i < 200; i++ {
		runOp(t, th, r, loopOp(0, 3))
	}
	st := w.st.ThreadStats(0)
	if st.OpsSlow == 0 || st.OpsFast == 0 {
		t.Fatalf("50%% slow fraction produced fast=%d slow=%d", st.OpsFast, st.OpsSlow)
	}
	frac := float64(st.OpsSlow) / float64(st.OpsFast+st.OpsSlow)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("slow fraction %.2f far from 0.5", frac)
	}
}

func TestActivityLifecycle(t *testing.T) {
	w := newWorld(t, 1, Config{})
	th := w.ts[0]
	r := NewRunner(w.st)
	op := loopOp(4, 3)
	r.Start(th, op)
	if got := w.m.Peek(th.ActivityAddr()); got != 5 {
		t.Fatalf("activity = %d during op, want opID+1 = 5", got)
	}
	for !r.Step(th) {
	}
	if got := w.m.Peek(th.ActivityAddr()); got != 0 {
		t.Fatalf("activity = %d after op, want 0", got)
	}
	if got := w.m.Peek(th.OperCntAddr()); got != 2 {
		t.Fatalf("oper counter = %d, want 2 (begin+end)", got)
	}
}

func TestCostsCharged(t *testing.T) {
	w := newWorld(t, 1, Config{InitialLimit: 5})
	th := w.ts[0]
	r := NewRunner(w.st)
	before := th.VTime()
	runOp(t, th, r, loopOp(0, 30))
	if th.VTime() <= before+30*cost.Block {
		t.Fatal("runner charged less than the raw block costs")
	}
}

func TestDrainStopsWhenNotShrinking(t *testing.T) {
	w := newWorld(t, 2, Config{})
	scanner, holder := w.ts[0], w.ts[1]
	obj := w.al.Alloc(0, 4)
	w.m.Poke(holder.StackBase, uint64(obj))
	fakeActive(w.m, holder, 4)
	w.st.Retire(scanner, obj)
	// The holder never goes idle: Drain must terminate anyway, keeping
	// the deferred pointer.
	w.st.Drain(scanner)
	if w.st.PendingFrees(scanner) != 1 {
		t.Fatal("Drain should keep the deferred pointer without looping forever")
	}
}

func TestRetireOutsideRunner(t *testing.T) {
	// Retire with no runner attached (teardown paths) goes straight to
	// the free set.
	w := newWorld(t, 1, Config{})
	th := w.ts[0]
	obj := w.al.Alloc(0, 4)
	w.st.Retire(th, obj)
	if w.st.PendingFrees(th) != 1 {
		t.Fatal("direct retire missing from free set")
	}
}

func TestUnsupportedBlockWithScanPending(t *testing.T) {
	// An unsupported block that retires past the scan threshold triggers
	// the interleaved scan from the non-transactional path.
	w := newWorld(t, 1, Config{MaxFree: 1})
	th := w.ts[0]
	objs := []word.Addr{w.al.Alloc(0, 4), w.al.Alloc(0, 4)}
	b := prog.NewBuilder()
	lbEnd := b.Label()
	b.AddUnsupported(func(tt *sched.Thread, f sched.Frame) int {
		tt.Retire(objs[0])
		tt.Retire(objs[1])
		return *lbEnd
	})
	b.Bind(lbEnd)
	b.Add(func(tt *sched.Thread, f sched.Frame) int { return prog.Done })
	op := b.Build(0, "test.UnsupRetire", 1)
	r := NewRunner(w.st)
	runOp(t, th, r, op)
	if w.al.IsAllocated(objs[0]) || w.al.IsAllocated(objs[1]) {
		t.Fatal("unsupported-path retires not reclaimed")
	}
	if w.st.ThreadStats(0).Scans == 0 {
		t.Fatal("scan never ran")
	}
}

func TestScanAtOpEndOnSlowPath(t *testing.T) {
	w := newWorld(t, 1, Config{ForceSlowPct: 100, MaxFree: 1})
	th := w.ts[0]
	objs := []word.Addr{w.al.Alloc(0, 4), w.al.Alloc(0, 4)}
	b := prog.NewBuilder()
	b.Add(func(tt *sched.Thread, f sched.Frame) int {
		tt.Retire(objs[0])
		tt.Retire(objs[1])
		return prog.Done
	})
	op := b.Build(0, "test.SlowRetire", 1)
	r := NewRunner(w.st)
	runOp(t, th, r, op)
	if w.al.IsAllocated(objs[0]) || w.al.IsAllocated(objs[1]) {
		t.Fatal("slow-path retires not reclaimed")
	}
	if w.st.ThreadStats(0).OpsSlow != 1 {
		t.Fatal("op should have run slow")
	}
}

func TestProtectIsNoOpForStackTrack(t *testing.T) {
	w := newWorld(t, 1, Config{})
	w.st.Protect(w.ts[0], 3, 0x40) // must not panic or allocate state
}

func TestRunnerBusyStates(t *testing.T) {
	w := newWorld(t, 1, Config{})
	r := NewRunner(w.st)
	if r.Busy() {
		t.Fatal("fresh runner busy")
	}
	r.Start(w.ts[0], loopOp(0, 2))
	if !r.Busy() {
		t.Fatal("started runner not busy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double Start should panic")
		}
	}()
	r.Start(w.ts[0], loopOp(0, 2))
}
