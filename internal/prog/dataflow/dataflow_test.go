package dataflow

import (
	"strings"
	"testing"

	"stacktrack/internal/prog"
	"stacktrack/internal/sched"
)

func nop(t *sched.Thread, f sched.Frame) int { return prog.Done }

// retNote is the standard returning-block annotation: R0 is killed with
// a scalar result, satisfying both the r0-unwritten check and the
// effect/SetsResult consistency check.
func retNote() []prog.Note {
	return []prog.Note{
		prog.Returns(), prog.SetsResult(),
		prog.Writes(prog.R(0)), prog.Kills(prog.R(0)),
	}
}

func TestAnalyzeIncompleteWithoutEffects(t *testing.T) {
	b := prog.NewBuilder()
	b.Add(nop, prog.Returns(), prog.SetsResult())
	op := b.Build(0, "noeff", 0)
	f := Analyze(op)
	if f.Complete {
		t.Fatal("CFG-only annotations must not produce facts")
	}
	if !strings.Contains(f.Reason, "effect") {
		t.Fatalf("Reason should name the missing effect layer: %q", f.Reason)
	}
	if !f.TopEverywhere() {
		t.Fatal("incomplete facts must count as Top everywhere (lint gate)")
	}
}

func TestAnalyzeSingleBlockMask(t *testing.T) {
	// One block: reads key in R1, stores a traversal pointer to F0,
	// scratches a scalar into F1, returns a scalar in R0.
	b := prog.NewBuilder()
	b.Add(nop, append(retNote(),
		prog.Reads(prog.R(1), prog.F(0)),
		prog.LoadsPtr(prog.F(0)),
		prog.Writes(prog.F(1)),
		prog.Kills(prog.F(1)),
	)...)
	op := b.Build(0, "single", 2)
	f := Analyze(op)
	if !f.Complete {
		t.Fatalf("not complete: %s", f.Reason)
	}
	if f.TopEverywhere() {
		t.Fatal("facts should not be Top everywhere")
	}
	if !f.Mask.Frame[0] {
		t.Error("F0 holds a live pointer (LoadsPtr + read in the same block); must be tracked")
	}
	if f.Mask.Frame[1] {
		t.Error("F1 is a dead scalar (Writes+Kills, never read, not live-out); must be elided")
	}
	if f.Mask.Regs[0] {
		t.Error("R0 is a killed scalar result; must be elided")
	}
}

func TestAnalyzeKillDiscardsEntryGarbage(t *testing.T) {
	// Block 0 kills F0 with a scalar before block 1 reads it: the entry
	// garbage (Top) never reaches a read, so F0 must not be tracked.
	b := prog.NewBuilder()
	next := b.Label()
	b.Add(nop, prog.Goto(next),
		prog.Writes(prog.F(0)), prog.Kills(prog.F(0)))
	b.Bind(next)
	b.Add(nop, append(retNote(), prog.Reads(prog.F(0)))...)
	op := b.Build(0, "killed", 1)
	f := Analyze(op)
	if !f.Complete {
		t.Fatalf("not complete: %s", f.Reason)
	}
	if got := f.TaintIn[1][sched.NumRegs]; got != NotPtr {
		t.Errorf("F0 taint-in at block 1 = %s, want not-ptr (killed scalar)", got)
	}
	if f.Mask.Frame[0] {
		t.Error("F0 never holds a pointer; must be elided")
	}
}

func TestAnalyzeMayWriteJoins(t *testing.T) {
	// F0 is only may-written with a pointer (no Kill), so the entry
	// garbage joins with MaybeHeapPtr and stays Top downstream — and the
	// slot is read later, so it must be tracked.
	b := prog.NewBuilder()
	next := b.Label()
	b.Add(nop, prog.Goto(next), prog.LoadsPtr(prog.F(0)))
	b.Bind(next)
	b.Add(nop, append(retNote(), prog.Reads(prog.F(0)))...)
	op := b.Build(0, "maywrite", 1)
	f := Analyze(op)
	if !f.Complete {
		t.Fatalf("not complete: %s", f.Reason)
	}
	if got := f.TaintIn[1][sched.NumRegs]; got != Top {
		t.Errorf("F0 taint-in at block 1 = %s, want top (garbage ∨ maybe-ptr)", got)
	}
	if !f.Mask.Frame[0] {
		t.Error("a live possibly-pointer slot must be tracked")
	}
}

func TestAnalyzeLoopFixpoint(t *testing.T) {
	// A traversal loop: block 1 re-writes F0 with a pointer and branches
	// back to itself. The fixpoint must converge with F0 tracked and the
	// analysis must terminate.
	b := prog.NewBuilder()
	loop := b.Label()
	done := b.Label()
	b.Add(nop, prog.Goto(loop),
		prog.LoadsPtr(prog.F(0)), prog.Kills(prog.F(0)))
	b.Bind(loop)
	b.Add(nop, prog.Goto(loop, done),
		prog.Reads(prog.F(0)), prog.LoadsPtr(prog.F(0)), prog.Kills(prog.F(0)))
	b.Bind(done)
	b.Add(nop, retNote()...)
	op := b.Build(0, "loop", 1)
	f := Analyze(op)
	if !f.Complete {
		t.Fatalf("not complete: %s", f.Reason)
	}
	if !f.Mask.Frame[0] {
		t.Error("the loop's node pointer must be tracked")
	}
	if got := f.TaintIn[1][sched.NumRegs]; got != MaybeHeapPtr {
		t.Errorf("F0 at the loop head = %s, want maybe-ptr (killed on every path in)", got)
	}
	// Liveness: F0 is dead at the exit block (never read there).
	if f.LiveIn[2][sched.NumRegs] {
		t.Error("F0 must be dead at the exit block")
	}
}

func TestAnalyzeEntryConvention(t *testing.T) {
	// Argument registers arrive NotPtr; everything else is Top.
	b := prog.NewBuilder()
	b.Add(nop, append(retNote(), prog.Reads(prog.R(1)))...)
	op := b.Build(0, "entry", 1)
	f := Analyze(op)
	if !f.Complete {
		t.Fatalf("not complete: %s", f.Reason)
	}
	for r := prog.RegResult; r <= prog.RegArg3; r++ {
		if f.TaintIn[0][r] != NotPtr {
			t.Errorf("R%d entry taint = %s, want not-ptr (scalar calling convention)", r, f.TaintIn[0][r])
		}
	}
	if f.TaintIn[0][prog.RegArg3+1] != Top {
		t.Errorf("scratch register entry taint = %s, want top", f.TaintIn[0][prog.RegArg3+1])
	}
	if f.TaintIn[0][sched.NumRegs] != Top {
		t.Errorf("frame slot entry taint = %s, want top", f.TaintIn[0][sched.NumRegs])
	}
	// The key register is a live scalar: live but NotPtr, so elided.
	if !f.LiveIn[0][1] {
		t.Error("R1 is read; must be live-in at entry")
	}
	if f.Mask.Regs[1] {
		t.Error("R1 is a scalar argument; must be elided despite being live")
	}
}

func TestMaskAndReportRendering(t *testing.T) {
	b := prog.NewBuilder()
	b.Add(nop, append(retNote(),
		prog.Reads(prog.F(1)), prog.LoadsPtr(prog.F(1)))...)
	op := b.Build(0, "render", 3)
	f := Analyze(op)
	if !f.Complete {
		t.Fatalf("not complete: %s", f.Reason)
	}
	if got := f.Mask.String(); got != "frame{1}/3 regs{}" {
		t.Errorf("mask rendering = %q", got)
	}
	if f.Mask.TrackedFrame() != 1 || f.Mask.TrackedRegs() != 0 {
		t.Errorf("tracked counts = %d/%d, want 1/0", f.Mask.TrackedFrame(), f.Mask.TrackedRegs())
	}
	if s := f.Summary(); !strings.Contains(s, "render") || !strings.Contains(s, "frame{1}/3") {
		t.Errorf("summary should carry the op name and mask: %q", s)
	}
	if r := f.Report(); !strings.Contains(r, "block 0") || !strings.Contains(r, "F1=") {
		t.Errorf("report should list per-block facts: %q", r)
	}
}
