package dataflow

// Human-readable fact tables: the stsim -lint -dataflow report and the
// CI artifact. The format is line-oriented and stable so the lint job can
// diff artifacts across runs.

import (
	"fmt"
	"strings"

	"stacktrack/internal/sched"
)

// Summary renders one line per operation: the mask and the elision win.
func (f *Facts) Summary() string {
	if !f.Complete {
		return fmt.Sprintf("%-18s NO FACTS (%s)", f.Op.Name, f.Reason)
	}
	total := f.Op.FrameWords + sched.NumRegs
	tracked := f.Mask.TrackedFrame() + f.Mask.TrackedRegs()
	return fmt.Sprintf("%-18s blocks=%-3d tracked=%d/%d %s",
		f.Op.Name, len(f.Op.Blocks), tracked, total, f.Mask)
}

// Report renders the full per-block fact table: for every block, the
// locations whose taint-in is pointer-bearing, the live sets, and the
// declared effects that produced them.
func (f *Facts) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "op %s: frame=%d words, %d blocks\n", f.Op.Name, f.Op.FrameWords, len(f.Op.Blocks))
	if !f.Complete {
		fmt.Fprintf(&sb, "  no facts: %s\n", f.Reason)
		return sb.String()
	}
	fmt.Fprintf(&sb, "  mask: %s\n", f.Mask)
	w := nLocs(f.Op)
	for b := range f.TaintIn {
		fmt.Fprintf(&sb, "  block %d:", b)
		var ptrs, live []string
		for i := 0; i < w; i++ {
			if f.TaintIn[b][i] >= MaybeHeapPtr {
				ptrs = append(ptrs, fmt.Sprintf("%s=%s", locName(i), f.TaintIn[b][i]))
			}
			if f.LiveIn[b][i] {
				live = append(live, locName(i))
			}
		}
		fmt.Fprintf(&sb, " ptr-in[%s] live-in[%s]\n", strings.Join(ptrs, " "), strings.Join(live, " "))
	}
	return sb.String()
}
