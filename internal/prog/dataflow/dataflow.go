// Package dataflow computes pointer-taint and liveness facts over the
// operation IR's declared control-flow graph — the static half of the
// paper's "automated" claim (§5.5): deciding which stack slots and
// registers can hold heap pointers, so the scanner tracks only those.
//
// The engine is a classic worklist solver over two analyses:
//
//   - Forward pointer taint. Each location (register or frame slot)
//     carries a value from the lattice NotPtr < MaybeHeapPtr < Top
//     (join = max). Block transfer functions come from the declared
//     effect notes: LoadsPtr taints a location MaybeHeapPtr, Writes
//     taints it NotPtr, and Kills discards the incoming taint (the
//     location is definitely overwritten, so only the declared written
//     value survives). Locations not written keep their incoming taint,
//     joined across predecessors.
//
//   - Backward liveness at split-checkpoint boundaries. live-in(b) =
//     Reads(b) ∪ (live-out(b) \ Kills(b)); live-out(b) joins the live-in
//     of every declared successor, plus R0 at returning blocks (the
//     calling convention says the driver reads the result there).
//
// Entry seeding encodes the driver calling convention: R0–R3 arrive
// holding scalar keys/values (NotPtr — the workload never passes heap
// pointers as arguments, and the dynamic effect oracle would flag an
// operation whose annotations contradict its behavior). Every other
// register and every frame slot starts Top: they hold whatever garbage
// the previous operation left behind.
//
// The consumable product is the per-operation TrackMask: a location is
// tracked iff some block can expose it holding a possibly-heap-pointer
// value while it is live. The union runs over every block — not just
// commit points — because the slow path's frame writes are plainly
// visible mid-block, so any block's intermediate state can be what a
// concurrent scanner observes. A location outside the mask is provably
// either never a pointer or dead at every possible observation point,
// which is exactly the license the scanner needs to elide it.
package dataflow

import (
	"fmt"
	"strings"

	"stacktrack/internal/prog"
	"stacktrack/internal/sched"
)

// Taint is the pointer-taint lattice value of one location.
type Taint uint8

const (
	// NotPtr: the location provably never holds a heap pointer here.
	NotPtr Taint = iota
	// MaybeHeapPtr: the location may hold a heap pointer (tracked).
	MaybeHeapPtr
	// Top: nothing is known (entry garbage); treated as pointer-bearing.
	Top
)

// String renders the taint for fact tables.
func (t Taint) String() string {
	switch t {
	case NotPtr:
		return "not-ptr"
	case MaybeHeapPtr:
		return "maybe-ptr"
	default:
		return "top"
	}
}

func join(a, b Taint) Taint {
	if a > b {
		return a
	}
	return b
}

// TrackMask is the scanner-facing product: which locations of an
// operation's exposed state can hold a live heap pointer. The zero value
// (Full=true implied by Frame==nil) means "no facts — scan everything".
type TrackMask struct {
	// FrameWords is the operation's frame size; the scanner uses it to
	// find the frame base below the exposed stack pointer. Stack words
	// below the current frame belong to popped frames and are never
	// scanned when facts are available.
	FrameWords int
	// Frame[i] reports whether frame slot i must be scanned.
	Frame []bool
	// Regs[i] reports whether register i must be scanned.
	Regs [sched.NumRegs]bool
}

// TrackedFrame counts the tracked frame slots.
func (m TrackMask) TrackedFrame() int {
	n := 0
	for _, b := range m.Frame {
		if b {
			n++
		}
	}
	return n
}

// TrackedRegs counts the tracked registers.
func (m TrackMask) TrackedRegs() int {
	n := 0
	for _, b := range m.Regs {
		if b {
			n++
		}
	}
	return n
}

// String renders the mask compactly: frame{1,2,4}/5 regs{} .
func (m TrackMask) String() string {
	var sb strings.Builder
	sb.WriteString("frame{")
	first := true
	for i, b := range m.Frame {
		if !b {
			continue
		}
		if !first {
			sb.WriteString(",")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	}
	fmt.Fprintf(&sb, "}/%d regs{", m.FrameWords)
	first = true
	for i, b := range m.Regs {
		if !b {
			continue
		}
		if !first {
			sb.WriteString(",")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	}
	sb.WriteString("}")
	return sb.String()
}

// Facts bundles one operation's analysis results. Locations are indexed
// 0..NumRegs-1 for registers and NumRegs+i for frame slot i.
type Facts struct {
	Op *prog.Op

	// Complete reports whether the analysis ran: every block carried both
	// control-flow and effect annotations. When false, Reason says why and
	// only Op/Reason are meaningful — consumers must fall back to full
	// scanning.
	Complete bool
	Reason   string

	TaintIn  [][]Taint
	TaintOut [][]Taint
	LiveIn   [][]bool
	LiveOut  [][]bool

	Mask TrackMask
}

// nLocs returns the location-vector width for op.
func nLocs(op *prog.Op) int { return sched.NumRegs + op.FrameWords }

// locIndex maps a Loc to its vector index.
func locIndex(l prog.Loc) int {
	if l.IsFrame {
		return sched.NumRegs + l.Index
	}
	return l.Index
}

// locName renders a vector index back to R?/F? form.
func locName(i int) string {
	if i < sched.NumRegs {
		return fmt.Sprintf("R%d", i)
	}
	return fmt.Sprintf("F%d", i-sched.NumRegs)
}

// Analyze computes taint, liveness, and the track mask for one built
// operation. It never fails hard: an operation without total annotations
// yields Facts{Complete: false}, which consumers treat as "track
// everything".
func Analyze(op *prog.Op) *Facts {
	f := &Facts{Op: op}
	cfg := op.CFG()
	if len(cfg) == 0 || len(cfg) != len(op.Blocks) {
		f.Reason = "no declared CFG"
		return f
	}
	if !op.Annotated() {
		f.Reason = "control-flow annotations incomplete"
		return f
	}
	if !op.EffectsAnnotated() {
		f.Reason = "effect annotations incomplete"
		return f
	}
	if ds := prog.VerifyOp(op); len(ds) > 0 {
		f.Reason = fmt.Sprintf("verifier diagnostics: %v", ds)
		return f
	}
	f.Complete = true

	n := len(cfg)
	w := nLocs(op)
	preds := make([][]int, n)
	for i, bi := range cfg {
		for _, s := range bi.Succs {
			preds[s] = append(preds[s], i)
		}
	}

	// writtenTaint[b][loc]: the taint of the value block b may write to
	// loc, or 0xff when b never writes loc.
	const noWrite = Taint(0xff)
	written := make([][]Taint, n)
	kills := make([][]bool, n)
	reads := make([][]bool, n)
	for b, bi := range cfg {
		written[b] = make([]Taint, w)
		for i := range written[b] {
			written[b][i] = noWrite
		}
		kills[b] = make([]bool, w)
		reads[b] = make([]bool, w)
		for _, l := range bi.Writes {
			i := locIndex(l)
			if written[b][i] == noWrite || written[b][i] < NotPtr {
				written[b][i] = NotPtr
			}
		}
		for _, l := range bi.LoadsPtr {
			i := locIndex(l)
			if written[b][i] == noWrite {
				written[b][i] = MaybeHeapPtr
			} else {
				written[b][i] = join(written[b][i], MaybeHeapPtr)
			}
		}
		for _, l := range bi.Kills {
			kills[b][locIndex(l)] = true
		}
		for _, l := range bi.Reads {
			reads[b][locIndex(l)] = true
		}
	}

	// --- Forward taint -------------------------------------------------
	f.TaintIn = makeTaint(n, w)
	f.TaintOut = makeTaint(n, w)
	// Entry: argument/result registers carry scalars by convention;
	// everything else is garbage from the previous operation.
	entry := make([]Taint, w)
	for i := range entry {
		entry[i] = Top
	}
	for r := prog.RegResult; r <= prog.RegArg3; r++ {
		entry[r] = NotPtr
	}
	copy(f.TaintIn[0], entry)

	transfer := func(b int, in []Taint, out []Taint) {
		for i := 0; i < w; i++ {
			switch {
			case kills[b][i]:
				// Definitely overwritten: only the written taint survives.
				out[i] = written[b][i]
			case written[b][i] != noWrite:
				// May be overwritten: join the possibilities.
				out[i] = join(in[i], written[b][i])
			default:
				out[i] = in[i]
			}
		}
	}

	// Worklist (forward): seed with the entry, propagate joins to
	// successors until the fixpoint.
	inQueue := make([]bool, n)
	queue := []int{0}
	inQueue[0] = true
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false
		transfer(b, f.TaintIn[b], f.TaintOut[b])
		for _, s := range cfg[b].Succs {
			changed := false
			for i := 0; i < w; i++ {
				if j := join(f.TaintIn[s][i], f.TaintOut[b][i]); j != f.TaintIn[s][i] {
					f.TaintIn[s][i] = j
					changed = true
				}
			}
			if changed && !inQueue[s] {
				inQueue[s] = true
				queue = append(queue, s)
			}
		}
	}

	// --- Backward liveness --------------------------------------------
	f.LiveIn = makeBool(n, w)
	f.LiveOut = makeBool(n, w)
	liveTransfer := func(b int) bool {
		changed := false
		for i := 0; i < w; i++ {
			li := reads[b][i] || (f.LiveOut[b][i] && !kills[b][i])
			if li != f.LiveIn[b][i] {
				f.LiveIn[b][i] = li
				changed = true
			}
		}
		return changed
	}
	// Seed: returning blocks leave R0 observable by the driver.
	for b, bi := range cfg {
		if bi.Returns {
			f.LiveOut[b][prog.RegResult] = true
		}
		queue = append(queue, b)
		inQueue[b] = true
	}
	for len(queue) > 0 {
		b := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[b] = false
		if !liveTransfer(b) {
			continue
		}
		for _, p := range preds[b] {
			changed := false
			for i := 0; i < w; i++ {
				if f.LiveIn[b][i] && !f.LiveOut[p][i] {
					f.LiveOut[p][i] = true
					changed = true
				}
			}
			if changed && !inQueue[p] {
				inQueue[p] = true
				queue = append(queue, p)
			}
		}
	}

	// --- Track mask ----------------------------------------------------
	// A location must be tracked if any block can expose it holding a
	// live, possibly-pointer value. Two values can be exposed per block —
	// mid-block exposure matters because the slow path's frame writes are
	// plainly visible between block boundaries:
	//
	//   - the incoming value, needed while live-in holds (a killed
	//     location's entry garbage is dead even when the slot is live-out:
	//     the overwrite is guaranteed before any read could see it);
	//   - the block's own written value, needed when it survives the block
	//     (live-out) or may be re-read within it (Reads includes
	//     read-after-write).
	f.Mask = TrackMask{FrameWords: op.FrameWords, Frame: make([]bool, op.FrameWords)}
	track := func(i int) {
		if i < sched.NumRegs {
			f.Mask.Regs[i] = true
		} else {
			f.Mask.Frame[i-sched.NumRegs] = true
		}
	}
	for b := 0; b < n; b++ {
		for i := 0; i < w; i++ {
			if f.TaintIn[b][i] >= MaybeHeapPtr && f.LiveIn[b][i] {
				track(i)
				continue
			}
			if written[b][i] != noWrite && written[b][i] >= MaybeHeapPtr &&
				(f.LiveOut[b][i] || reads[b][i]) {
				track(i)
			}
		}
	}
	return f
}

// TopEverywhere reports whether the facts have degenerated to "every
// location is Top at every block" — the signature of annotation rot (for
// example, every block declaring empty effect sets would make every
// entry-garbage location look live and unknown). CI fails the lint run
// when a data-structure op reports this.
func (f *Facts) TopEverywhere() bool {
	if !f.Complete {
		return true
	}
	for b := range f.TaintIn {
		for i := range f.TaintIn[b] {
			if f.TaintIn[b][i] != Top {
				return false
			}
		}
	}
	return true
}

func makeTaint(n, w int) [][]Taint {
	out := make([][]Taint, n)
	for i := range out {
		out[i] = make([]Taint, w)
	}
	return out
}

func makeBool(n, w int) [][]bool {
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, w)
	}
	return out
}
