// Package prog represents data-structure operations the way StackTrack's
// compiler sees them: as a list of basic code blocks with a split
// checkpoint opportunity between every pair of blocks.
//
// A Block is a Go function that performs the block's loads, stores, and
// CASes through the thread's access layer and returns the index of the next
// block (its branch). Operation locals that hold heap pointers live in the
// operation's stack frame or in the simulated register file — never in Go
// variables that outlive the block — which is what makes them visible to
// the StackTrack scanner and restorable after a segment abort.
//
// Calling convention: arguments arrive in registers R1..R3; the result is
// returned in R0 (and must be written there before the final block ends).
package prog

import (
	"stacktrack/internal/cost"
	"stacktrack/internal/metrics"
	"stacktrack/internal/sched"
)

// Done is the block-return value ending the operation.
const Done = -1

// Argument/result register conventions.
const (
	RegResult = 0 // R0: operation result
	RegArg1   = 1 // R1: first argument (key)
	RegArg2   = 2 // R2: second argument (value)
	RegArg3   = 3 // R3: third argument
)

// Block is one basic code block: straight-line code ending in a branch
// (the returned next-block index).
type Block func(t *sched.Thread, f sched.Frame) int

// Block attributes (§5.4–§5.5 of the paper).
const (
	// AttrAtomic marks a block inside a programmer-defined transactional
	// region: the split runtime never commits between two atomic blocks,
	// and exposes registers with a commit when the region ends (§5.5).
	AttrAtomic uint8 = 1 << iota
	// AttrUnsupported marks a block containing an instruction that cannot
	// execute inside a hardware transaction (I/O, system call): the
	// runtime commits the current segment, runs the block
	// non-transactionally, and starts a fresh segment after it (§5.4).
	AttrUnsupported
)

// Op is one data-structure operation in compiled (basic-block) form.
type Op struct {
	// ID uniquely identifies the operation within the program; the split
	// predictor keys its per-segment length table on it (Alg. 2).
	ID int
	// Name is for diagnostics and benchmark output.
	Name string
	// FrameWords is the operation's stack-frame size in words.
	FrameWords int
	// Blocks is the operation body; execution starts at Blocks[0].
	Blocks []Block

	attrs []uint8
	cfg   []BlockInfo
}

// Atomic reports whether block i lies inside a programmer-defined
// transactional region.
func (o *Op) Atomic(i int) bool {
	return i >= 0 && i < len(o.attrs) && o.attrs[i]&AttrAtomic != 0
}

// Unsupported reports whether block i cannot execute transactionally.
func (o *Op) Unsupported(i int) bool {
	return i >= 0 && i < len(o.attrs) && o.attrs[i]&AttrUnsupported != 0
}

// Runner executes operations one basic block at a time so the scheduler can
// interleave threads between blocks. PlainRunner (here) executes without
// transactions; the StackTrack fast/slow runner lives in internal/core.
type Runner interface {
	// Start begins executing op on t. Arguments are already in t's
	// registers.
	Start(t *sched.Thread, op *Op)
	// Step advances the operation by one unit (a basic block, a segment
	// retry, or a scan chunk) and reports whether it completed.
	Step(t *sched.Thread) bool
	// Busy reports whether an operation is in progress.
	Busy() bool
}

// PlainRunner executes operations directly: no transactions, no split
// checkpoints. All baseline schemes (Original, Epoch, Hazards, DTA) use it;
// their per-operation and per-load overheads come from the Reclaimer hooks.
type PlainRunner struct {
	op    *Op
	pc    int
	frame sched.Frame
	busy  bool

	// Hist, when non-nil, receives each completed operation's virtual
	// latency in cycles (the bench harness installs the shared
	// "ops.op_cycles" histogram here).
	Hist *metrics.Histogram

	opStartV cost.Cycles
}

// Start implements Runner.
func (r *PlainRunner) Start(t *sched.Thread, op *Op) {
	if r.busy {
		panic("prog: Start while an operation is in progress")
	}
	r.opStartV = t.VTime()
	t.Scheme.BeginOp(t, op.ID)
	t.Trace(sched.TraceOpStart, uint64(op.ID))
	r.op = op
	r.pc = 0
	r.frame = t.PushFrame(op.FrameWords)
	r.busy = true
}

// Step implements Runner: one basic block per call.
func (r *PlainRunner) Step(t *sched.Thread) bool {
	if !r.busy {
		panic("prog: Step without an operation in progress")
	}
	cur := r.pc
	t.CurOp, t.CurBlock = r.op.Name, cur
	var sp metrics.Span
	var v0 cost.Cycles
	if t.Prof != nil {
		sp = t.Prof.SpanStart()
		v0 = t.VTime()
	}
	t.Charge(cost.Block)
	if t.EffectObs != nil {
		t.EffectObs.BlockStart(t, r.op.Name, cur)
	}
	r.pc = r.op.Blocks[r.pc](t, r.frame)
	if t.EffectObs != nil {
		t.EffectObs.BlockEnd(t, r.op.Name, cur, true)
	}
	if r.pc == Done {
		t.PopFrame(r.frame)
		t.Scheme.EndOp(t)
		t.Trace(sched.TraceOpEnd, t.Reg(RegResult))
		if t.Prof != nil {
			t.Prof.SpanBlock(sp, r.op.ID, cur, r.op.Name, uint64(t.VTime()-v0))
		}
		if r.Hist != nil {
			r.Hist.Observe(t.ID, uint64(t.VTime()-r.opStartV))
		}
		r.busy = false
		return true
	}
	if t.Prof != nil {
		t.Prof.SpanBlock(sp, r.op.ID, cur, r.op.Name, uint64(t.VTime()-v0))
	}
	return false
}

// Busy implements Runner.
func (r *PlainRunner) Busy() bool { return r.busy }

// Driver adapts a Runner plus a workload source into a sched.Stepper: it
// feeds the next operation into the runner whenever the previous one
// completes.
type Driver struct {
	Runner Runner
	// Next supplies the next operation and its argument registers; ok
	// false ends the thread's workload.
	Next func(t *sched.Thread) (op *Op, args [3]uint64, ok bool)
	// OnDone, if set, observes each completed operation's result (R0).
	OnDone func(t *sched.Thread, op *Op, result uint64)

	cur *Op
}

// Step implements sched.Stepper.
func (d *Driver) Step(t *sched.Thread) bool {
	if !d.Runner.Busy() {
		op, args, ok := d.Next(t)
		if !ok {
			return true
		}
		t.SetReg(RegArg1, args[0])
		t.SetReg(RegArg2, args[1])
		t.SetReg(RegArg3, args[2])
		t.SetReg(RegResult, 0)
		d.cur = op
		d.Runner.Start(t, op)
		return false
	}
	if d.Runner.Step(t) {
		t.OpsDone++
		if d.OnDone != nil {
			d.OnDone(t, d.cur, t.Reg(RegResult))
		}
	}
	return false
}
