package prog

import "fmt"

// Builder assembles an operation's basic blocks with forward-referencable
// labels, the way a compiler lays out a control-flow graph. Blocks obtain
// their branch targets by dereferencing *Label values at run time, so a
// label may be bound after the blocks that jump to it are added.
type Builder struct {
	blocks []Block
	attrs  []uint8
	labels []*int
	atomic bool
}

// NewBuilder returns an empty operation builder.
func NewBuilder() *Builder { return &Builder{} }

// Label allocates an unbound jump target.
func (b *Builder) Label() *int {
	l := new(int)
	*l = -2 // poison: jumping to an unbound label fails loudly
	b.labels = append(b.labels, l)
	return l
}

// Bind points label l at the next block to be added.
func (b *Builder) Bind(l *int) { *l = len(b.blocks) }

// Add appends a basic block and returns its index.
func (b *Builder) Add(blk Block) int {
	var attr uint8
	if b.atomic {
		attr |= AttrAtomic
	}
	b.blocks = append(b.blocks, blk)
	b.attrs = append(b.attrs, attr)
	return len(b.blocks) - 1
}

// AtomicBegin opens a programmer-defined transactional region: blocks added
// until AtomicEnd carry AttrAtomic and are never split apart (§5.5).
func (b *Builder) AtomicBegin() {
	if b.atomic {
		panic("prog: nested AtomicBegin")
	}
	b.atomic = true
}

// AtomicEnd closes the current transactional region.
func (b *Builder) AtomicEnd() {
	if !b.atomic {
		panic("prog: AtomicEnd without AtomicBegin")
	}
	b.atomic = false
}

// AddUnsupported appends a block that cannot execute inside a hardware
// transaction (§5.4). It panics inside an atomic region: a programmer-
// defined transaction containing an untransactable instruction can only run
// on the software slow path, which the paper leaves to the programmer's
// fallback.
func (b *Builder) AddUnsupported(blk Block) int {
	if b.atomic {
		panic("prog: unsupported instruction inside a programmer-defined transactional region")
	}
	i := b.Add(blk)
	b.attrs[i] |= AttrUnsupported
	return i
}

// Build finalizes the operation. It panics on unbound labels — an unbound
// label is a construction bug that would otherwise surface as a bizarre
// runtime jump.
func (b *Builder) Build(id int, name string, frameWords int) *Op {
	for i, l := range b.labels {
		if *l < 0 || *l >= len(b.blocks) {
			panic(fmt.Sprintf("prog: op %s has unbound or out-of-range label %d (-> %d)", name, i, *l))
		}
	}
	if len(b.blocks) == 0 {
		panic(fmt.Sprintf("prog: op %s has no blocks", name))
	}
	if b.atomic {
		panic(fmt.Sprintf("prog: op %s has an unclosed transactional region", name))
	}
	return &Op{ID: id, Name: name, FrameWords: frameWords, Blocks: b.blocks, attrs: b.attrs}
}
