package prog

import (
	"fmt"
	"strings"
)

// Builder assembles an operation's basic blocks with forward-referencable
// labels, the way a compiler lays out a control-flow graph. Blocks obtain
// their branch targets by dereferencing *Label values at run time, so a
// label may be bound after the blocks that jump to it are added.
//
// Because blocks are opaque closures, their control flow is *declared*:
// Add accepts Notes naming the block's possible branch targets (Goto),
// whether it may end the operation (Returns), and whether it writes the
// R0 result (SetsResult). Build verifies fully annotated operations
// against these declarations (see verify.go); unannotated blocks keep
// the legacy label-only checking.
type Builder struct {
	blocks []Block
	attrs  []uint8
	labels []*int
	meta   []blockNotes
	atomic bool
}

// blockNotes is the declared control flow and effects of one block.
type blockNotes struct {
	gotos     []*int
	returns   bool
	setsR0    bool
	annotated bool

	effects  bool
	reads    []Loc
	writes   []Loc
	loadsPtr []Loc
	kills    []Loc
}

// Note annotates a block added with Add/AddUnsupported. Construct Notes
// with Goto, Returns, and SetsResult (control flow) and Reads, Writes,
// LoadsPtr, Kills, and NoEffects (data effects for the dataflow pass).
type Note struct {
	gotos   []*int
	returns bool
	setsR0  bool

	effects  bool
	reads    []Loc
	writes   []Loc
	loadsPtr []Loc
	kills    []Loc
}

// Goto declares that the block may branch to any of the given labels.
// Computed branches (the skip list's subroutine return) list every label
// the jump register can hold.
func Goto(targets ...*int) Note { return Note{gotos: targets} }

// Returns declares that the block may end the operation (return Done).
func Returns() Note { return Note{returns: true} }

// SetsResult declares that the block writes R0 — on every path through
// the block that matters for the result convention (in particular before
// any Done it returns).
func SetsResult() Note { return Note{setsR0: true} }

// Reads declares the registers and frame slots the block may read (its
// may-read set). Every location the block can possibly load must be
// listed; the dynamic effect oracle treats an unlisted read as a finding.
func Reads(locs ...Loc) Note { return Note{effects: true, reads: locs} }

// Writes declares locations the block may overwrite with values that are
// never heap pointers (counters, keys, block indices, booleans). The
// dataflow pass taints them NotPtr, which is what lets the scanner elide
// them.
func Writes(locs ...Loc) Note { return Note{effects: true, writes: locs} }

// LoadsPtr declares locations the block may overwrite with values that
// can be heap pointers (node addresses, link-word addresses, raw next
// words). The dataflow pass taints them MaybeHeapPtr, so the scanner
// keeps tracking them while they are live.
func LoadsPtr(locs ...Loc) Note { return Note{effects: true, loadsPtr: locs} }

// Kills declares the must-write set: locations the block definitely
// overwrites on every path through it, before any read of their incoming
// value could escape the block. A killed location's incoming taint is
// discarded (the written taint comes from its Writes/LoadsPtr membership,
// which the verifier requires). The effect oracle checks each completed
// execution actually wrote every killed location.
func Kills(locs ...Loc) Note { return Note{effects: true, kills: locs} }

// NoEffects declares that the block touches no registers and no frame
// slots at all (an unconditional jump, a pure delay). It exists so an
// operation can be *totally* effect-annotated — the dataflow pass only
// trusts operations where every block declared its effects.
func NoEffects() Note { return Note{effects: true} }

// NewBuilder returns an empty operation builder.
func NewBuilder() *Builder { return &Builder{} }

// Label allocates an unbound jump target.
func (b *Builder) Label() *int {
	l := new(int)
	*l = -2 // poison: jumping to an unbound label fails loudly
	b.labels = append(b.labels, l)
	return l
}

// Bind points label l at the next block to be added.
func (b *Builder) Bind(l *int) { *l = len(b.blocks) }

// Add appends a basic block and returns its index. Optional Notes
// declare the block's branch targets and effects for the verifier.
func (b *Builder) Add(blk Block, notes ...Note) int {
	var attr uint8
	if b.atomic {
		attr |= AttrAtomic
	}
	var m blockNotes
	for _, n := range notes {
		m.annotated = true
		m.gotos = append(m.gotos, n.gotos...)
		m.returns = m.returns || n.returns
		m.setsR0 = m.setsR0 || n.setsR0
		m.effects = m.effects || n.effects
		m.reads = append(m.reads, n.reads...)
		m.writes = append(m.writes, n.writes...)
		m.loadsPtr = append(m.loadsPtr, n.loadsPtr...)
		m.kills = append(m.kills, n.kills...)
	}
	b.blocks = append(b.blocks, blk)
	b.attrs = append(b.attrs, attr)
	b.meta = append(b.meta, m)
	return len(b.blocks) - 1
}

// AtomicBegin opens a programmer-defined transactional region: blocks added
// until AtomicEnd carry AttrAtomic and are never split apart (§5.5).
func (b *Builder) AtomicBegin() {
	if b.atomic {
		panic("prog: nested AtomicBegin")
	}
	b.atomic = true
}

// AtomicEnd closes the current transactional region.
func (b *Builder) AtomicEnd() {
	if !b.atomic {
		panic("prog: AtomicEnd without AtomicBegin")
	}
	b.atomic = false
}

// AddUnsupported appends a block that cannot execute inside a hardware
// transaction (§5.4). It panics inside an atomic region: a programmer-
// defined transaction containing an untransactable instruction can only run
// on the software slow path, which the paper leaves to the programmer's
// fallback.
func (b *Builder) AddUnsupported(blk Block, notes ...Note) int {
	if b.atomic {
		panic("prog: unsupported instruction inside a programmer-defined transactional region")
	}
	i := b.Add(blk, notes...)
	b.attrs[i] |= AttrUnsupported
	return i
}

// Build finalizes the operation, running the static verifier first. It
// panics on any diagnostic — an unbound label, an out-of-range branch, a
// return path that never wrote R0 — because a malformed operation would
// otherwise surface as a bizarre runtime jump deep inside a simulation.
// Use Verify for the non-panicking report.
func (b *Builder) Build(id int, name string, frameWords int) *Op {
	if ds := b.verifyAll(name, frameWords); len(ds) > 0 {
		msgs := make([]string, len(ds))
		for i, d := range ds {
			msgs[i] = d.String()
		}
		panic(fmt.Sprintf("prog: op %s failed verification:\n  %s", name, strings.Join(msgs, "\n  ")))
	}
	return &Op{ID: id, Name: name, FrameWords: frameWords, Blocks: b.blocks, attrs: b.attrs, cfg: b.resolveCFG()}
}
