package prog

import (
	"strings"
	"testing"

	"stacktrack/internal/sched"
)

// nop is a placeholder block body; the verifier only reads annotations.
func nop(t *sched.Thread, f sched.Frame) int { return Done }

func hasDiag(ds []Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestVerifyUnboundLabelDiagnostic(t *testing.T) {
	b := NewBuilder()
	lb := b.Label() // never bound: keeps the -2 poison
	b.Add(nop, Goto(lb), Returns(), SetsResult())
	ds := b.Verify("bad")
	if !hasDiag(ds, DiagUnboundLabel) {
		t.Fatalf("want %s, got %v", DiagUnboundLabel, ds)
	}
	// The poison value must appear in the message so the report pinpoints
	// an unbound (rather than out-of-range) label.
	if !strings.Contains(ds[0].Msg, "-2") {
		t.Fatalf("diagnostic should carry the poison value: %q", ds[0].Msg)
	}
}

func TestVerifyLabelBoundPastEnd(t *testing.T) {
	b := NewBuilder()
	lb := b.Label()
	b.Add(nop, Goto(lb), Returns(), SetsResult())
	b.Bind(lb) // bound after the last Add: points one past the end
	ds := b.Verify("bad")
	if !hasDiag(ds, DiagUnboundLabel) {
		t.Fatalf("want %s for label bound past the end, got %v", DiagUnboundLabel, ds)
	}
}

func TestVerifyR0UnwrittenPath(t *testing.T) {
	b := NewBuilder()
	lbEnd := b.Label()
	b.Add(nop, Goto(lbEnd))
	b.Bind(lbEnd)
	b.Add(nop, Returns()) // returns without SetsResult anywhere on the path
	ds := b.Verify("bad")
	if !hasDiag(ds, DiagR0Unwritten) {
		t.Fatalf("want %s, got %v", DiagR0Unwritten, ds)
	}
	// The diagnostic carries an example path from the entry block.
	var msg string
	for _, d := range ds {
		if d.Code == DiagR0Unwritten {
			msg = d.Msg
		}
	}
	if !strings.Contains(msg, "0->1") {
		t.Fatalf("diagnostic should show the example path, got %q", msg)
	}
}

func TestVerifyR0WrittenOnAllPaths(t *testing.T) {
	b := NewBuilder()
	lbA := b.Label()
	lbB := b.Label()
	b.Add(nop, Goto(lbA, lbB))
	b.Bind(lbA)
	b.Add(nop, Returns(), SetsResult())
	b.Bind(lbB)
	b.Add(nop, Goto(lbA), SetsResult())
	if ds := b.Verify("good"); len(ds) != 0 {
		t.Fatalf("diamond with R0 written on every return: %v", ds)
	}
}

func TestVerifyBranchRange(t *testing.T) {
	b := NewBuilder()
	lb := b.Label()
	b.Bind(lb)
	b.Add(nop, Goto(lb), Returns(), SetsResult())
	// Force the label out of range by hand (Bind cannot produce this, but a
	// caller scribbling on the *int can).
	*lb = 7
	ds := b.Verify("bad")
	if !hasDiag(ds, DiagUnboundLabel) {
		t.Fatalf("want %s for label forced out of range, got %v", DiagUnboundLabel, ds)
	}
}

func TestVerifyNoExit(t *testing.T) {
	b := NewBuilder()
	b.Add(nop, SetsResult()) // annotated, but neither Goto nor Returns
	ds := b.Verify("bad")
	if !hasDiag(ds, DiagNoExit) {
		t.Fatalf("want %s, got %v", DiagNoExit, ds)
	}
}

func TestVerifyUnreachable(t *testing.T) {
	b := NewBuilder()
	b.Add(nop, Returns(), SetsResult())
	b.Add(nop, Returns(), SetsResult()) // nothing branches here
	ds := b.Verify("bad")
	if !hasDiag(ds, DiagUnreachable) {
		t.Fatalf("want %s, got %v", DiagUnreachable, ds)
	}
}

func TestVerifyAtomicEntry(t *testing.T) {
	b := NewBuilder()
	lbMid := b.Label()
	b.Add(nop, Goto(lbMid), Returns(), SetsResult())
	b.AtomicBegin()
	b.Add(nop, Returns(), SetsResult()) // region head
	b.Bind(lbMid)
	b.Add(nop, Returns(), SetsResult()) // region middle: the bad target
	b.AtomicEnd()
	ds := b.Verify("bad")
	if !hasDiag(ds, DiagAtomicEntry) {
		t.Fatalf("want %s for a branch into a region middle, got %v", DiagAtomicEntry, ds)
	}
	if !hasDiag(ds, DiagUnreachable) {
		t.Fatalf("the skipped region head should also be unreachable, got %v", ds)
	}
}

func TestVerifyAtomicRegionInternalBranchOK(t *testing.T) {
	b := NewBuilder()
	lbIn := b.Label()
	lbHead := b.Label()
	b.Add(nop, Goto(lbHead))
	b.AtomicBegin()
	b.Bind(lbHead)
	b.Add(nop, Goto(lbIn))
	b.Bind(lbIn)
	b.Add(nop, Goto(lbHead), Returns(), SetsResult()) // loop within the region
	b.AtomicEnd()
	if ds := b.Verify("good"); len(ds) != 0 {
		t.Fatalf("branches within one atomic region are fine: %v", ds)
	}
}

func TestVerifyLegacyUnannotatedSkipsCFGChecks(t *testing.T) {
	b := NewBuilder()
	lbEnd := b.Label()
	b.Add(nop) // no Notes: legacy mode
	b.Bind(lbEnd)
	b.Add(nop)
	if ds := b.Verify("legacy"); len(ds) != 0 {
		t.Fatalf("unannotated ops keep label-only checking: %v", ds)
	}
}

func TestBuildPanicsOnR0Unwritten(t *testing.T) {
	b := NewBuilder()
	b.Add(nop, Returns())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Build should panic on a failing verification")
		}
		if !strings.Contains(r.(string), DiagR0Unwritten) {
			t.Fatalf("panic should name the diagnostic code: %v", r)
		}
	}()
	b.Build(0, "bad", 0)
}

func TestVerifyOpCleanAndCFGExposed(t *testing.T) {
	op := addOp()
	// addOp is unannotated; VerifyOp stays clean in legacy mode.
	if ds := VerifyOp(op); len(ds) != 0 {
		t.Fatalf("legacy op: %v", ds)
	}
	if op.Annotated() {
		t.Fatal("addOp has no Notes; Annotated must be false")
	}

	b := NewBuilder()
	lbEnd := b.Label()
	b.Add(nop, Goto(lbEnd))
	b.Bind(lbEnd)
	b.Add(nop, Returns(), SetsResult())
	op2 := b.Build(1, "two", 0)
	if !op2.Annotated() {
		t.Fatal("fully annotated op should report Annotated")
	}
	if ds := VerifyOp(op2); len(ds) != 0 {
		t.Fatalf("built op must re-verify clean: %v", ds)
	}
	cfg := op2.CFG()
	if len(cfg) != 2 || len(cfg[0].Succs) != 1 || cfg[0].Succs[0] != 1 {
		t.Fatalf("CFG should resolve labels to indices: %+v", cfg)
	}
	if !cfg[1].Returns || !cfg[1].SetsResult {
		t.Fatalf("effects should survive into BlockInfo: %+v", cfg[1])
	}
}

func TestVerifyAtomicRegionAtBlockZero(t *testing.T) {
	// An atomic region that starts at block 0 is legal: the op entry IS
	// the region head, so neither entering the op nor looping back to
	// block 0 jumps into the middle of a region.
	b := NewBuilder()
	lbHead := b.Label()
	lbOut := b.Label()
	b.AtomicBegin()
	b.Bind(lbHead)
	b.Add(nop, Goto(lbHead, lbOut), NoEffects())
	b.AtomicEnd()
	b.Bind(lbOut)
	b.Add(nop, Returns(), SetsResult(), Writes(R(0)), Kills(R(0)))
	if ds := b.Verify("good"); len(ds) != 0 {
		t.Fatalf("atomic region at block 0 must verify clean: %v", ds)
	}
	op := b.Build(0, "atomic0", 0)
	cfg := op.CFG()
	if !cfg[0].Atomic || cfg[1].Atomic {
		t.Fatalf("attrs should mark exactly block 0 atomic: %+v", cfg)
	}
}

func TestVerifySingleBlockNoSuccessors(t *testing.T) {
	// A one-block op with no Goto at all: legal when it Returns...
	b := NewBuilder()
	b.Add(nop, Returns(), SetsResult(), Writes(R(0)), Kills(R(0)))
	if ds := b.Verify("good"); len(ds) != 0 {
		t.Fatalf("single returning block must verify clean: %v", ds)
	}

	// ...and a no-exit diagnostic when it neither branches nor returns,
	// even with full effect annotations (effects do not imply an exit).
	b2 := NewBuilder()
	b2.Add(nop, SetsResult(), NoEffects())
	ds := b2.Verify("bad")
	if !hasDiag(ds, DiagNoExit) {
		t.Fatalf("want %s for an annotated dead-end block, got %v", DiagNoExit, ds)
	}
}

func TestVerifyLabelPastEndShortCircuitsLaterChecks(t *testing.T) {
	// A label bound exactly one past the end makes every successor index
	// unusable; the verifier must report the label and stop rather than
	// walk the broken CFG (or index out of range in the effect checks).
	b := NewBuilder()
	lb := b.Label()
	b.Add(nop, Goto(lb), Returns(), SetsResult(), Writes(R(0)), Kills(R(0)))
	b.Bind(lb) // == len(blocks): one past the end
	ds := b.Verify("bad")
	if len(ds) != 1 || ds[0].Code != DiagUnboundLabel {
		t.Fatalf("want exactly one %s, got %v", DiagUnboundLabel, ds)
	}
	if !strings.Contains(ds[0].Msg, "1") {
		t.Fatalf("message should show the out-of-range target: %q", ds[0].Msg)
	}
}
