package prog

// Static verification of the compiled operation IR. The builder's blocks
// are opaque Go closures, so control flow is declared rather than
// inferred: each Add may carry Notes (Goto/Returns/SetsResult) naming the
// block's possible branch targets and effects. When every block of an
// operation is annotated the verifier walks the resulting CFG; without
// full annotation only the label-binding checks run (legacy mode), so
// ad-hoc test operations keep working unannotated.
//
// The checks mirror what a compiler's IR validator would enforce:
//
//   - every label is bound, and bound in range (an unbound label still
//     carries its -2 poison; a label bound after the last Add points one
//     past the end);
//   - no block branches out of range;
//   - every block has an exit (a successor or a return) and every block
//     is reachable from the entry;
//   - R0 is written on all paths to return — the calling convention says
//     the result is in R0 when the final block ends;
//   - atomic regions are entered only at their first block: a branch into
//     the middle of a programmer-defined transactional region would skip
//     the region entry the split runtime keys on (§5.5).

import (
	"fmt"
	"strings"
)

// Diagnostic codes reported by the verifier.
const (
	DiagUnboundLabel = "unbound-label" // label never bound or bound out of range
	DiagEmptyOp      = "empty-op"      // operation has no blocks
	DiagOpenAtomic   = "open-atomic"   // AtomicBegin without AtomicEnd at Build
	DiagBranchRange  = "branch-range"  // declared successor outside [0, len(blocks))
	DiagNoExit       = "no-exit"       // block declares neither successors nor a return
	DiagUnreachable  = "unreachable"   // block unreachable from the entry block
	DiagR0Unwritten  = "r0-unwritten"  // a path from entry reaches return without writing R0
	DiagAtomicEntry  = "atomic-entry"  // branch into the middle of an atomic region
)

// Diagnostic is one verifier finding.
type Diagnostic struct {
	Op    string // operation name
	Block int    // block index the finding anchors to, -1 for op-level findings
	Code  string // one of the Diag* codes
	Msg   string
}

func (d Diagnostic) String() string {
	if d.Block < 0 {
		return fmt.Sprintf("%s: [%s] %s", d.Op, d.Code, d.Msg)
	}
	return fmt.Sprintf("%s: block %d: [%s] %s", d.Op, d.Block, d.Code, d.Msg)
}

// BlockInfo is one block's declared control flow and effects, with label
// targets resolved to block indices. Annotated is false for blocks added
// without Notes; an operation with any unannotated block is only checked
// at the label level.
type BlockInfo struct {
	Succs      []int
	Returns    bool
	SetsResult bool
	Atomic     bool
	Annotated  bool
}

// CFG returns the operation's declared control-flow graph, one entry per
// block. The slice is shared; treat it as read-only.
func (o *Op) CFG() []BlockInfo { return o.cfg }

// Verify runs the static checks against the builder's current state and
// returns the findings without panicking (Build panics on the same
// findings). name labels the diagnostics.
func (b *Builder) Verify(name string) []Diagnostic {
	var ds []Diagnostic
	if len(b.blocks) == 0 {
		ds = append(ds, Diagnostic{Op: name, Block: -1, Code: DiagEmptyOp, Msg: "operation has no blocks"})
	}
	if b.atomic {
		ds = append(ds, Diagnostic{Op: name, Block: -1, Code: DiagOpenAtomic, Msg: "unclosed transactional region (AtomicBegin without AtomicEnd)"})
	}
	for i, l := range b.labels {
		if *l < 0 || *l >= len(b.blocks) {
			ds = append(ds, Diagnostic{
				Op: name, Block: -1, Code: DiagUnboundLabel,
				Msg: fmt.Sprintf("label %d unbound or out of range (-> %d, %d blocks)", i, *l, len(b.blocks)),
			})
		}
	}
	if len(ds) > 0 {
		// Unresolvable labels make the CFG meaningless; stop here.
		return ds
	}
	return append(ds, verifyCFG(name, b.resolveCFG(), b.attrs)...)
}

// VerifyOp re-runs the CFG checks against a built operation — the stsim
// -lint entry point. Build already enforced these, so a clean result is
// the expected outcome; the value is the report (block counts, coverage)
// and catching hand-assembled Ops that bypassed the builder.
func VerifyOp(o *Op) []Diagnostic {
	if len(o.Blocks) == 0 {
		return []Diagnostic{{Op: o.Name, Block: -1, Code: DiagEmptyOp, Msg: "operation has no blocks"}}
	}
	return verifyCFG(o.Name, o.cfg, o.attrs)
}

// Annotated reports whether every block of the operation carries control-
// flow annotations (i.e. the full CFG checks applied at Build).
func (o *Op) Annotated() bool {
	if len(o.cfg) == 0 {
		return false
	}
	for _, bi := range o.cfg {
		if !bi.Annotated {
			return false
		}
	}
	return true
}

// resolveCFG materializes the per-block metadata with labels resolved.
func (b *Builder) resolveCFG() []BlockInfo {
	cfg := make([]BlockInfo, len(b.blocks))
	for i := range b.blocks {
		m := b.meta[i]
		bi := BlockInfo{
			Returns:    m.returns,
			SetsResult: m.setsR0,
			Atomic:     b.attrs[i]&AttrAtomic != 0,
			Annotated:  m.annotated,
		}
		for _, l := range m.gotos {
			bi.Succs = append(bi.Succs, *l)
		}
		cfg[i] = bi
	}
	return cfg
}

// verifyCFG runs the graph-level checks. attrs may be shorter than cfg
// (all-zero attributes are elided); missing entries mean no flags.
func verifyCFG(name string, cfg []BlockInfo, attrs []uint8) []Diagnostic {
	var ds []Diagnostic
	n := len(cfg)
	for _, bi := range cfg {
		if !bi.Annotated {
			return ds // legacy mode: label checks only
		}
	}
	if n == 0 {
		return ds
	}

	atomic := func(i int) bool { return i < len(attrs) && attrs[i]&AttrAtomic != 0 }
	// regionHead(i): block i starts an atomic region (is atomic, and its
	// textual predecessor is not).
	regionHead := func(i int) bool { return atomic(i) && (i == 0 || !atomic(i-1)) }
	// sameRegion(u, v): u and v lie in one contiguous atomic run.
	sameRegion := func(u, v int) bool {
		if !atomic(u) || !atomic(v) {
			return false
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		for i := lo; i <= hi; i++ {
			if !atomic(i) {
				return false
			}
		}
		return true
	}

	for i, bi := range cfg {
		if len(bi.Succs) == 0 && !bi.Returns {
			ds = append(ds, Diagnostic{
				Op: name, Block: i, Code: DiagNoExit,
				Msg: "block declares no successors and no return",
			})
		}
		for _, s := range bi.Succs {
			if s < 0 || s >= n {
				ds = append(ds, Diagnostic{
					Op: name, Block: i, Code: DiagBranchRange,
					Msg: fmt.Sprintf("branches to block %d, out of range [0, %d)", s, n),
				})
				continue
			}
			if atomic(s) && !regionHead(s) && !sameRegion(i, s) {
				ds = append(ds, Diagnostic{
					Op: name, Block: i, Code: DiagAtomicEntry,
					Msg: fmt.Sprintf("branches into the middle of the atomic region at block %d", s),
				})
			}
		}
	}

	// Reachability from the entry block, tracking the R0 dataflow at the
	// same time: state "dirty" means some path reaches the block with R0
	// still unwritten. parent reconstructs an example path for reports.
	const (
		unseen = iota
		clean  // reached, R0 written on every path in
		dirty  // reached with R0 possibly unwritten
	)
	state := make([]uint8, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var queue []int
	push := func(b int, st uint8, from int) {
		if b < 0 || b >= n || state[b] >= st {
			return
		}
		if state[b] == unseen {
			parent[b] = from
		}
		state[b] = st
		queue = append(queue, b)
	}
	push(0, dirty, -1)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		out := state[b]
		if cfg[b].SetsResult {
			out = clean
		}
		for _, s := range cfg[b].Succs {
			push(s, out, b)
		}
	}

	for i, bi := range cfg {
		if state[i] == unseen {
			ds = append(ds, Diagnostic{
				Op: name, Block: i, Code: DiagUnreachable,
				Msg: "block is unreachable from the entry block",
			})
			continue
		}
		if bi.Returns && !bi.SetsResult && state[i] == dirty {
			ds = append(ds, Diagnostic{
				Op: name, Block: i, Code: DiagR0Unwritten,
				Msg: fmt.Sprintf("can return with R0 never written (path %s)", pathTo(parent, i)),
			})
		}
	}
	return ds
}

// pathTo renders the entry→i example path recorded by the verifier walk.
func pathTo(parent []int, i int) string {
	var idx []int
	for b := i; b >= 0; b = parent[b] {
		idx = append(idx, b)
		if len(idx) > len(parent) {
			break // defensive: parent cycles cannot happen, but never loop
		}
	}
	var sb strings.Builder
	for j := len(idx) - 1; j >= 0; j-- {
		if sb.Len() > 0 {
			sb.WriteString("->")
		}
		fmt.Fprintf(&sb, "%d", idx[j])
	}
	return sb.String()
}
