package prog

// Static verification of the compiled operation IR. The builder's blocks
// are opaque Go closures, so control flow is declared rather than
// inferred: each Add may carry Notes (Goto/Returns/SetsResult) naming the
// block's possible branch targets and effects. When every block of an
// operation is annotated the verifier walks the resulting CFG; without
// full annotation only the label-binding checks run (legacy mode), so
// ad-hoc test operations keep working unannotated.
//
// The checks mirror what a compiler's IR validator would enforce:
//
//   - every label is bound, and bound in range (an unbound label still
//     carries its -2 poison; a label bound after the last Add points one
//     past the end);
//   - no block branches out of range;
//   - every block has an exit (a successor or a return) and every block
//     is reachable from the entry;
//   - R0 is written on all paths to return — the calling convention says
//     the result is in R0 when the final block ends;
//   - atomic regions are entered only at their first block: a branch into
//     the middle of a programmer-defined transactional region would skip
//     the region entry the split runtime keys on (§5.5).

import (
	"fmt"
	"strings"
)

// Diagnostic codes reported by the verifier.
const (
	DiagUnboundLabel = "unbound-label" // label never bound or bound out of range
	DiagEmptyOp      = "empty-op"      // operation has no blocks
	DiagOpenAtomic   = "open-atomic"   // AtomicBegin without AtomicEnd at Build
	DiagBranchRange  = "branch-range"  // declared successor outside [0, len(blocks))
	DiagNoExit       = "no-exit"       // block declares neither successors nor a return
	DiagUnreachable  = "unreachable"   // block unreachable from the entry block
	DiagR0Unwritten  = "r0-unwritten"  // a path from entry reaches return without writing R0
	DiagAtomicEntry  = "atomic-entry"  // branch into the middle of an atomic region

	// DiagPartialAnnotation reports an operation where only some blocks
	// carry control-flow annotations. The CFG checks cannot run against
	// half a graph, and silently downgrading to label-only checking (the
	// old behavior) hid exactly the annotation rot the verifier exists to
	// catch — so a partially annotated operation is now itself a finding.
	DiagPartialAnnotation = "partial-annotation"
	// DiagEffectPartial is the effect-layer analogue: some blocks declare
	// Reads/Writes/LoadsPtr/Kills and others do not, so the dataflow pass
	// would have to guess the missing blocks' behavior.
	DiagEffectPartial = "effect-partial"
	// DiagEffectRange reports an effect naming a location that does not
	// exist: a register beyond the register file or a frame slot beyond
	// the operation's declared frame.
	DiagEffectRange = "effect-range"
	// DiagEffectMismatch reports declared effects that contradict each
	// other or the control-flow notes: SetsResult without R0 in the write
	// sets, or a killed location with no declared written value
	// (Kills ⊄ Writes ∪ LoadsPtr).
	DiagEffectMismatch = "effect-mismatch"
)

// Diagnostic is one verifier finding.
type Diagnostic struct {
	Op    string // operation name
	Block int    // block index the finding anchors to, -1 for op-level findings
	Code  string // one of the Diag* codes
	Msg   string
}

func (d Diagnostic) String() string {
	if d.Block < 0 {
		return fmt.Sprintf("%s: [%s] %s", d.Op, d.Code, d.Msg)
	}
	return fmt.Sprintf("%s: block %d: [%s] %s", d.Op, d.Block, d.Code, d.Msg)
}

// BlockInfo is one block's declared control flow and effects, with label
// targets resolved to block indices. Annotated is false for blocks added
// without Notes; an operation with any unannotated block is only checked
// at the label level.
type BlockInfo struct {
	Succs      []int
	Returns    bool
	SetsResult bool
	Atomic     bool
	Annotated  bool

	// Effects reports whether the block declared its data effects (via
	// Reads/Writes/LoadsPtr/Kills/NoEffects). The sets below are only
	// meaningful when it is true.
	Effects  bool
	Reads    []Loc
	Writes   []Loc
	LoadsPtr []Loc
	Kills    []Loc
}

// CFG returns the operation's declared control-flow graph, one entry per
// block. The slice is shared; treat it as read-only.
func (o *Op) CFG() []BlockInfo { return o.cfg }

// Verify runs the static checks against the builder's current state and
// returns the findings without panicking (Build panics on the same
// findings). name labels the diagnostics. The frame size is unknown here,
// so frame-slot effects are only range-checked at Build/VerifyOp.
func (b *Builder) Verify(name string) []Diagnostic {
	return b.verifyAll(name, -1)
}

// verifyAll is Verify with the frame size known (Build's entry point).
func (b *Builder) verifyAll(name string, frameWords int) []Diagnostic {
	var ds []Diagnostic
	if len(b.blocks) == 0 {
		ds = append(ds, Diagnostic{Op: name, Block: -1, Code: DiagEmptyOp, Msg: "operation has no blocks"})
	}
	if b.atomic {
		ds = append(ds, Diagnostic{Op: name, Block: -1, Code: DiagOpenAtomic, Msg: "unclosed transactional region (AtomicBegin without AtomicEnd)"})
	}
	for i, l := range b.labels {
		if *l < 0 || *l >= len(b.blocks) {
			ds = append(ds, Diagnostic{
				Op: name, Block: -1, Code: DiagUnboundLabel,
				Msg: fmt.Sprintf("label %d unbound or out of range (-> %d, %d blocks)", i, *l, len(b.blocks)),
			})
		}
	}
	if len(ds) > 0 {
		// Unresolvable labels make the CFG meaningless; stop here.
		return ds
	}
	cfg := b.resolveCFG()
	ds = append(ds, verifyCFG(name, cfg, b.attrs)...)
	return append(ds, verifyEffects(name, cfg, frameWords)...)
}

// VerifyOp re-runs the CFG checks against a built operation — the stsim
// -lint entry point. Build already enforced these, so a clean result is
// the expected outcome; the value is the report (block counts, coverage)
// and catching hand-assembled Ops that bypassed the builder.
func VerifyOp(o *Op) []Diagnostic {
	if len(o.Blocks) == 0 {
		return []Diagnostic{{Op: o.Name, Block: -1, Code: DiagEmptyOp, Msg: "operation has no blocks"}}
	}
	ds := verifyCFG(o.Name, o.cfg, o.attrs)
	return append(ds, verifyEffects(o.Name, o.cfg, o.FrameWords)...)
}

// Annotated reports whether every block of the operation carries control-
// flow annotations (i.e. the full CFG checks applied at Build).
func (o *Op) Annotated() bool {
	if len(o.cfg) == 0 {
		return false
	}
	for _, bi := range o.cfg {
		if !bi.Annotated {
			return false
		}
	}
	return true
}

// EffectsAnnotated reports whether every block of the operation declares
// its data effects — the precondition for the dataflow pass to trust the
// operation.
func (o *Op) EffectsAnnotated() bool {
	if len(o.cfg) == 0 {
		return false
	}
	for _, bi := range o.cfg {
		if !bi.Effects {
			return false
		}
	}
	return true
}

// resolveCFG materializes the per-block metadata with labels resolved.
func (b *Builder) resolveCFG() []BlockInfo {
	cfg := make([]BlockInfo, len(b.blocks))
	for i := range b.blocks {
		m := b.meta[i]
		bi := BlockInfo{
			Returns:    m.returns,
			SetsResult: m.setsR0,
			Atomic:     b.attrs[i]&AttrAtomic != 0,
			Annotated:  m.annotated,
			Effects:    m.effects,
			Reads:      m.reads,
			Writes:     m.writes,
			LoadsPtr:   m.loadsPtr,
			Kills:      m.kills,
		}
		for _, l := range m.gotos {
			bi.Succs = append(bi.Succs, *l)
		}
		cfg[i] = bi
	}
	return cfg
}

// verifyCFG runs the graph-level checks. attrs may be shorter than cfg
// (all-zero attributes are elided); missing entries mean no flags.
func verifyCFG(name string, cfg []BlockInfo, attrs []uint8) []Diagnostic {
	var ds []Diagnostic
	n := len(cfg)
	if n == 0 {
		return ds
	}
	if missing := unannotated(cfg); len(missing) > 0 {
		if len(missing) == n {
			// Fully unannotated: legacy mode, label checks only. Ad-hoc
			// test operations keep working without declarations.
			return ds
		}
		// Partially annotated operations used to silently fall back to
		// legacy mode, skipping reachability and exit checks on the very
		// operations whose authors thought they were covered.
		return append(ds, Diagnostic{
			Op: name, Block: -1, Code: DiagPartialAnnotation,
			Msg: fmt.Sprintf("blocks %s lack control-flow annotations while others declare them; CFG checks skipped — annotate every block (or none)", intList(missing)),
		})
	}

	atomic := func(i int) bool { return i < len(attrs) && attrs[i]&AttrAtomic != 0 }
	// regionHead(i): block i starts an atomic region (is atomic, and its
	// textual predecessor is not).
	regionHead := func(i int) bool { return atomic(i) && (i == 0 || !atomic(i-1)) }
	// sameRegion(u, v): u and v lie in one contiguous atomic run.
	sameRegion := func(u, v int) bool {
		if !atomic(u) || !atomic(v) {
			return false
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		for i := lo; i <= hi; i++ {
			if !atomic(i) {
				return false
			}
		}
		return true
	}

	for i, bi := range cfg {
		if len(bi.Succs) == 0 && !bi.Returns {
			ds = append(ds, Diagnostic{
				Op: name, Block: i, Code: DiagNoExit,
				Msg: "block declares no successors and no return",
			})
		}
		for _, s := range bi.Succs {
			if s < 0 || s >= n {
				ds = append(ds, Diagnostic{
					Op: name, Block: i, Code: DiagBranchRange,
					Msg: fmt.Sprintf("branches to block %d, out of range [0, %d)", s, n),
				})
				continue
			}
			if atomic(s) && !regionHead(s) && !sameRegion(i, s) {
				ds = append(ds, Diagnostic{
					Op: name, Block: i, Code: DiagAtomicEntry,
					Msg: fmt.Sprintf("branches into the middle of the atomic region at block %d", s),
				})
			}
		}
	}

	// Reachability from the entry block, tracking the R0 dataflow at the
	// same time: state "dirty" means some path reaches the block with R0
	// still unwritten. parent reconstructs an example path for reports.
	const (
		unseen = iota
		clean  // reached, R0 written on every path in
		dirty  // reached with R0 possibly unwritten
	)
	state := make([]uint8, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var queue []int
	push := func(b int, st uint8, from int) {
		if b < 0 || b >= n || state[b] >= st {
			return
		}
		if state[b] == unseen {
			parent[b] = from
		}
		state[b] = st
		queue = append(queue, b)
	}
	push(0, dirty, -1)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		out := state[b]
		if cfg[b].SetsResult {
			out = clean
		}
		for _, s := range cfg[b].Succs {
			push(s, out, b)
		}
	}

	for i, bi := range cfg {
		if state[i] == unseen {
			ds = append(ds, Diagnostic{
				Op: name, Block: i, Code: DiagUnreachable,
				Msg: "block is unreachable from the entry block",
			})
			continue
		}
		if bi.Returns && !bi.SetsResult && state[i] == dirty {
			ds = append(ds, Diagnostic{
				Op: name, Block: i, Code: DiagR0Unwritten,
				Msg: fmt.Sprintf("can return with R0 never written (path %s)", pathTo(parent, i)),
			})
		}
	}
	return ds
}

// verifyEffects runs the effect-layer checks: per-block internal
// consistency of the declared Reads/Writes/LoadsPtr/Kills sets, their
// agreement with the control-flow notes, and all-or-nothing effect
// coverage. The checks are local (no graph walk), so they run even for
// operations whose CFG annotations are partial. frameWords < 0 skips the
// frame-slot upper bound (standalone Builder.Verify).
func verifyEffects(name string, cfg []BlockInfo, frameWords int) []Diagnostic {
	var ds []Diagnostic
	var withEffects int
	for _, bi := range cfg {
		if bi.Effects {
			withEffects++
		}
	}
	if withEffects > 0 && withEffects < len(cfg) {
		var missing []int
		for i, bi := range cfg {
			if !bi.Effects {
				missing = append(missing, i)
			}
		}
		ds = append(ds, Diagnostic{
			Op: name, Block: -1, Code: DiagEffectPartial,
			Msg: fmt.Sprintf("blocks %s declare no effects while others do; the dataflow pass needs every block covered (use NoEffects for blocks that touch nothing)", intList(missing)),
		})
	}

	for i, bi := range cfg {
		if !bi.Effects {
			continue
		}
		for _, set := range []struct {
			kind string
			locs []Loc
		}{{"Reads", bi.Reads}, {"Writes", bi.Writes}, {"LoadsPtr", bi.LoadsPtr}, {"Kills", bi.Kills}} {
			for _, l := range set.locs {
				if !l.valid(frameWords) {
					ds = append(ds, Diagnostic{
						Op: name, Block: i, Code: DiagEffectRange,
						Msg: fmt.Sprintf("%s names %s, outside the register file / %d-word frame", set.kind, l, frameWords),
					})
				}
			}
		}
		for _, l := range bi.Kills {
			if !locIn(bi.Writes, l) && !locIn(bi.LoadsPtr, l) {
				ds = append(ds, Diagnostic{
					Op: name, Block: i, Code: DiagEffectMismatch,
					Msg: fmt.Sprintf("Kills %s but neither Writes nor LoadsPtr declares the written value", l),
				})
			}
		}
		if bi.SetsResult {
			r0 := R(RegResult)
			if !locIn(bi.Writes, r0) && !locIn(bi.LoadsPtr, r0) {
				ds = append(ds, Diagnostic{
					Op: name, Block: i, Code: DiagEffectMismatch,
					Msg: "declared SetsResult but effects never write R0 (add Writes(R(0)) or LoadsPtr(R(0)))",
				})
			}
		}
	}
	return ds
}

// unannotated lists the blocks lacking control-flow annotations.
func unannotated(cfg []BlockInfo) []int {
	var missing []int
	for i, bi := range cfg {
		if !bi.Annotated {
			missing = append(missing, i)
		}
	}
	return missing
}

// intList renders a block-index list for diagnostics.
func intList(idx []int) string {
	var sb strings.Builder
	for i, b := range idx {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "%d", b)
	}
	return sb.String()
}

// pathTo renders the entry→i example path recorded by the verifier walk.
func pathTo(parent []int, i int) string {
	var idx []int
	for b := i; b >= 0; b = parent[b] {
		idx = append(idx, b)
		if len(idx) > len(parent) {
			break // defensive: parent cycles cannot happen, but never loop
		}
	}
	var sb strings.Builder
	for j := len(idx) - 1; j >= 0; j-- {
		if sb.Len() > 0 {
			sb.WriteString("->")
		}
		fmt.Fprintf(&sb, "%d", idx[j])
	}
	return sb.String()
}
