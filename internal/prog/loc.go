package prog

import (
	"fmt"

	"stacktrack/internal/sched"
)

// Loc names one storage location an operation block can touch: a working
// register (R) or a slot of the operation's stack frame (F). Effect notes
// (Reads/Writes/LoadsPtr/Kills) are sets of Locs; the dataflow pass keys
// its taint and liveness facts on them.
type Loc struct {
	// IsFrame distinguishes frame slots from registers.
	IsFrame bool
	// Index is the register number or the frame-slot index.
	Index int
}

// R returns the Loc for working register i.
func R(i int) Loc { return Loc{Index: i} }

// F returns the Loc for frame slot i (relative to the operation's frame).
func F(i int) Loc { return Loc{IsFrame: true, Index: i} }

// String renders the location the way diagnostics and fact tables print
// it: R3, F7.
func (l Loc) String() string {
	if l.IsFrame {
		return fmt.Sprintf("F%d", l.Index)
	}
	return fmt.Sprintf("R%d", l.Index)
}

// valid reports whether the location exists for an operation with the
// given frame size. frameWords < 0 means the frame size is unknown (the
// builder's standalone Verify), which skips the frame upper bound.
func (l Loc) valid(frameWords int) bool {
	if l.Index < 0 {
		return false
	}
	if l.IsFrame {
		return frameWords < 0 || l.Index < frameWords
	}
	return l.Index < sched.NumRegs
}

// locIn reports set membership.
func locIn(locs []Loc, l Loc) bool {
	for _, x := range locs {
		if x == l {
			return true
		}
	}
	return false
}
