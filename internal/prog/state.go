// Snapshot-state support (internal/snap): a PlainRunner's mutable state is
// the in-flight operation (by ID — Block closures are rebuilt by the
// restore target), its program counter and frame, and the operation's
// start time; a Driver's is the current operation handle. The Next/OnDone
// closures and the histogram handle are wiring, reinstalled by the layer
// that owns them (the bench harness).

package prog

import (
	"stacktrack/internal/cost"
	"stacktrack/internal/sched"
	"stacktrack/internal/word"
)

// PlainRunnerState is a PlainRunner's mutable state.
type PlainRunnerState struct {
	Busy      bool
	OpID      int
	PC        int
	FrameBase word.Addr
	FrameSize int
	OpStartV  cost.Cycles
}

// SaveState copies out the runner's state.
func (r *PlainRunner) SaveState() *PlainRunnerState {
	s := &PlainRunnerState{Busy: r.busy, OpStartV: r.opStartV}
	if r.busy {
		s.OpID = r.op.ID
		s.PC = r.pc
		s.FrameBase = r.frame.Base()
		s.FrameSize = r.frame.Size()
	}
	return s
}

// RestoreState overwrites the runner from a saved state. opByID resolves
// operation IDs against the restore target's own op table.
func (r *PlainRunner) RestoreState(s *PlainRunnerState, t *sched.Thread, opByID func(id int) *Op) {
	r.busy = s.Busy
	r.opStartV = s.OpStartV
	r.op = nil
	if s.Busy {
		r.op = opByID(s.OpID)
		r.pc = s.PC
		r.frame = t.RebuildFrame(s.FrameBase, s.FrameSize)
	}
}

// DriverState is a Driver's mutable state beyond its Runner's.
type DriverState struct {
	HasCur bool
	CurID  int
}

// SaveState copies out the driver's state.
func (d *Driver) SaveState() *DriverState {
	s := &DriverState{}
	if d.cur != nil {
		s.HasCur = true
		s.CurID = d.cur.ID
	}
	return s
}

// RestoreState overwrites the driver from a saved state.
func (d *Driver) RestoreState(s *DriverState, opByID func(id int) *Op) {
	d.cur = nil
	if s.HasCur {
		d.cur = opByID(s.CurID)
	}
}
