package prog

import (
	"testing"

	"stacktrack/internal/alloc"
	"stacktrack/internal/mem"
	"stacktrack/internal/sched"
	"stacktrack/internal/topo"
)

func newThread(t *testing.T) *sched.Thread {
	t.Helper()
	m := mem.New(mem.Config{Words: 1 << 16})
	a := alloc.New(m)
	sc := sched.NewScheduler(m, topo.Haswell8Way(), 1)
	_ = sc
	th := sched.NewThread(0, m, a, 7)
	th.Scheme = sched.NopReclaimer{}
	return th
}

// addOp builds a three-block operation: R0 = R1 + R2, with a frame slot
// carrying the intermediate.
func addOp() *Op {
	b := NewBuilder()
	lbMid := b.Label()
	lbEnd := b.Label()
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		f.Set(0, t.Reg(RegArg1))
		return *lbMid
	})
	b.Bind(lbMid)
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		f.Set(0, f.Get(0)+t.Reg(RegArg2))
		return *lbEnd
	})
	b.Bind(lbEnd)
	b.Add(func(t *sched.Thread, f sched.Frame) int {
		t.SetReg(RegResult, f.Get(0))
		return Done
	})
	return b.Build(0, "test.Add", 1)
}

func TestBuilderUnboundLabelPanics(t *testing.T) {
	b := NewBuilder()
	lb := b.Label()
	b.Add(func(t *sched.Thread, f sched.Frame) int { return *lb })
	defer func() {
		if recover() == nil {
			t.Fatal("Build with unbound label should panic")
		}
	}()
	b.Build(0, "bad", 0)
}

func TestBuilderEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build with no blocks should panic")
		}
	}()
	NewBuilder().Build(0, "empty", 0)
}

func TestPlainRunnerExecutes(t *testing.T) {
	th := newThread(t)
	op := addOp()
	r := &PlainRunner{}
	th.SetReg(RegArg1, 30)
	th.SetReg(RegArg2, 12)
	r.Start(th, op)
	steps := 0
	for !r.Step(th) {
		steps++
	}
	if th.Reg(RegResult) != 42 {
		t.Fatalf("result %d, want 42", th.Reg(RegResult))
	}
	if steps != 2 { // three blocks => done on the third Step
		t.Fatalf("steps = %d, want 2 intermediate", steps)
	}
	if th.SP() != 0 {
		t.Fatal("frame not popped at op end")
	}
}

func TestPlainRunnerStartWhileBusyPanics(t *testing.T) {
	th := newThread(t)
	r := &PlainRunner{}
	r.Start(th, addOp())
	defer func() {
		if recover() == nil {
			t.Fatal("Start while busy should panic")
		}
	}()
	r.Start(th, addOp())
}

func TestPlainRunnerStepIdlePanics(t *testing.T) {
	th := newThread(t)
	r := &PlainRunner{}
	defer func() {
		if recover() == nil {
			t.Fatal("Step without op should panic")
		}
	}()
	r.Step(th)
}

func TestDriverFeedsOps(t *testing.T) {
	th := newThread(t)
	op := addOp()
	issued := 0
	var results []uint64
	d := &Driver{
		Runner: &PlainRunner{},
		Next: func(t *sched.Thread) (*Op, [3]uint64, bool) {
			if issued >= 3 {
				return nil, [3]uint64{}, false
			}
			issued++
			return op, [3]uint64{uint64(issued), 10, 0}, true
		},
		OnDone: func(t *sched.Thread, op *Op, result uint64) {
			results = append(results, result)
		},
	}
	for !d.Step(th) {
	}
	if th.OpsDone != 3 {
		t.Fatalf("OpsDone = %d, want 3", th.OpsDone)
	}
	want := []uint64{11, 12, 13}
	for i, w := range want {
		if results[i] != w {
			t.Fatalf("result[%d] = %d, want %d", i, results[i], w)
		}
	}
}

func TestAtomicRegionFlags(t *testing.T) {
	b := NewBuilder()
	lb := b.Label()
	b.Add(func(th *sched.Thread, f sched.Frame) int { return *lb })
	b.AtomicBegin()
	b.Bind(lb)
	b.Add(func(th *sched.Thread, f sched.Frame) int { return Done })
	b.AtomicEnd()
	op := b.Build(0, "flags", 0)
	if op.Atomic(0) {
		t.Fatal("block 0 should not be atomic")
	}
	if !op.Atomic(1) {
		t.Fatal("block 1 should be atomic")
	}
	if op.Atomic(-1) || op.Atomic(99) {
		t.Fatal("out-of-range Atomic should be false")
	}
}

func TestUnsupportedFlag(t *testing.T) {
	b := NewBuilder()
	b.AddUnsupported(func(th *sched.Thread, f sched.Frame) int { return Done })
	op := b.Build(0, "unsup", 0)
	if !op.Unsupported(0) {
		t.Fatal("block 0 should be unsupported")
	}
	if op.Unsupported(1) {
		t.Fatal("out-of-range Unsupported should be false")
	}
}

func TestNestedAtomicPanics(t *testing.T) {
	b := NewBuilder()
	b.AtomicBegin()
	defer func() {
		if recover() == nil {
			t.Fatal("nested AtomicBegin should panic")
		}
	}()
	b.AtomicBegin()
}

func TestAtomicEndWithoutBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AtomicEnd without begin should panic")
		}
	}()
	NewBuilder().AtomicEnd()
}

func TestBuildWithOpenRegionPanics(t *testing.T) {
	b := NewBuilder()
	b.AtomicBegin()
	b.Add(func(th *sched.Thread, f sched.Frame) int { return Done })
	defer func() {
		if recover() == nil {
			t.Fatal("Build with open region should panic")
		}
	}()
	b.Build(0, "open", 0)
}

func TestPlainRunnerIgnoresFlags(t *testing.T) {
	// The plain runner executes flagged blocks like any other: regions
	// and unsupported instructions only constrain the transactional
	// runner.
	th := newThread(t)
	b := NewBuilder()
	lb := b.Label()
	b.AtomicBegin()
	b.Add(func(tt *sched.Thread, f sched.Frame) int { return *lb })
	b.AtomicEnd()
	b.Bind(lb)
	b.AddUnsupported(func(tt *sched.Thread, f sched.Frame) int {
		tt.SetReg(RegResult, 7)
		return Done
	})
	op := b.Build(0, "flagged", 0)
	r := &PlainRunner{}
	r.Start(th, op)
	for !r.Step(th) {
	}
	if th.Reg(RegResult) != 7 {
		t.Fatal("flagged blocks did not execute under the plain runner")
	}
}

func TestDriverStopsWhenExhausted(t *testing.T) {
	th := newThread(t)
	d := &Driver{
		Runner: &PlainRunner{},
		Next: func(tt *sched.Thread) (*Op, [3]uint64, bool) {
			return nil, [3]uint64{}, false
		},
	}
	if !d.Step(th) {
		t.Fatal("driver with no work should report done")
	}
}
