package topo

import "testing"

func TestHaswell8Way(t *testing.T) {
	tp := Haswell8Way()
	if tp.Contexts() != 8 {
		t.Fatalf("Contexts = %d, want 8", tp.Contexts())
	}
	if tp.Cores != 4 || tp.ThreadsPerCore != 2 {
		t.Fatalf("unexpected topology %+v", tp)
	}
}

func TestFirstThreadsLandOnDistinctCores(t *testing.T) {
	tp := Haswell8Way()
	seen := map[int]bool{}
	for th := 0; th < tp.Cores; th++ {
		core := tp.CoreOf(tp.HWContextOf(th))
		if seen[core] {
			t.Fatalf("thread %d shares a core within the first %d threads", th, tp.Cores)
		}
		seen[core] = true
	}
}

func TestFifthThreadSharesACore(t *testing.T) {
	tp := Haswell8Way()
	c4 := tp.CoreOf(tp.HWContextOf(4))
	c0 := tp.CoreOf(tp.HWContextOf(0))
	if c4 != c0 {
		t.Fatalf("thread 4 should share core with thread 0 (got cores %d and %d)", c4, c0)
	}
}

func TestOversubscribed(t *testing.T) {
	tp := Haswell8Way()
	if tp.Oversubscribed(8) {
		t.Fatal("8 threads on 8 contexts is not oversubscribed")
	}
	if !tp.Oversubscribed(9) {
		t.Fatal("9 threads on 8 contexts is oversubscribed")
	}
}

func TestHWContextWrap(t *testing.T) {
	tp := Haswell8Way()
	for th := 0; th < 32; th++ {
		hw := tp.HWContextOf(th)
		if hw < 0 || hw >= tp.Contexts() {
			t.Fatalf("thread %d mapped to invalid context %d", th, hw)
		}
	}
	if tp.HWContextOf(8) != tp.HWContextOf(0) {
		t.Fatal("thread 8 should share context 0")
	}
}
