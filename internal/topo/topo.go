// Package topo models the hardware topology of the simulated machine: how
// many physical cores it has, how many hardware threads (hyperthreads) each
// core multiplexes, and how software threads map onto hardware contexts.
//
// The paper's evaluation machine is an Intel Haswell with 4 cores × 2
// hyperthreads. Its three performance regimes — parallel (threads ≤ cores),
// hardware multiplexing (cores < threads ≤ contexts, siblings share an L1),
// and software multiplexing (threads > contexts, the OS preempts) — all fall
// out of this model.
package topo

// Topology describes the simulated machine.
type Topology struct {
	// Cores is the number of physical cores.
	Cores int
	// ThreadsPerCore is the number of hardware contexts per core.
	ThreadsPerCore int

	// L1Lines is the number of cache lines a transaction's write set may
	// occupy when its core runs a single hardware thread (Haswell:
	// 32 KB / 64 B = 512).
	L1Lines int
	// ReadSetLines bounds a transaction's read set (reads are tracked
	// beyond L1 on real hardware, so this is larger).
	ReadSetLines int

	// SiblingEvictRate scales the probabilistic capacity-abort term: when
	// a core's sibling hardware thread is active, each basic block aborts
	// an in-flight transaction with probability
	// SiblingEvictRate × footprintLines ⁄ L1Lines — i.e. every sibling
	// cache fill evicts a tracked line with probability footprint/L1.
	// 1.0 is the physical value for a sibling that streams one line per
	// block through the shared L1.
	SiblingEvictRate float64

	// HTSlowdown is the extra time factor a thread pays while its
	// sibling hardware context is active (shared execution units): a
	// step of cost c costs c × (1 + HTSlowdown). 0.6 makes a fully
	// loaded core ~25% faster than a single hardware thread, the typical
	// hyperthreading yield.
	HTSlowdown float64
}

// Haswell8Way returns the paper's evaluation machine: 4 cores × 2
// hyperthreads with a 512-line transactional write capacity.
func Haswell8Way() Topology {
	return Topology{
		Cores:            4,
		ThreadsPerCore:   2,
		L1Lines:          512,
		ReadSetLines:     4096,
		SiblingEvictRate: 1.0,
		HTSlowdown:       0.6,
	}
}

// Contexts returns the total number of hardware contexts.
func (t Topology) Contexts() int { return t.Cores * t.ThreadsPerCore }

// CoreOf returns the physical core hosting hardware context hw.
// Contexts are numbered so that 0..Cores-1 land on distinct cores first,
// matching how benchmarks pin threads: with ≤ Cores threads there is no
// hyperthread sharing.
func (t Topology) CoreOf(hw int) int { return hw % t.Cores }

// HWContextOf returns the hardware context a software thread is pinned to.
// Threads beyond the context count share contexts round-robin and are
// subject to preemption by the scheduler.
func (t Topology) HWContextOf(thread int) int { return thread % t.Contexts() }

// Oversubscribed reports whether n software threads exceed the machine's
// hardware contexts, i.e. whether the OS must timeslice.
func (t Topology) Oversubscribed(n int) bool { return n > t.Contexts() }
