package workload

import (
	"testing"

	"stacktrack/internal/rng"
)

// TestZipfDeterminism: the generator is a pure function of the rng
// state — same seed, same key sequence, across independent generator
// instances.
func TestZipfDeterminism(t *testing.T) {
	const n, draws = 10_000, 5_000
	z1, z2 := NewZipf(n, 0.99), NewZipf(n, 0.99)
	r1, r2 := rng.New(42), rng.New(42)
	for i := 0; i < draws; i++ {
		a, b := z1.Next(r1), z2.Next(r2)
		if a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
		if a < 1 || a > n {
			t.Fatalf("draw %d out of range: %d", i, a)
		}
	}
	// A different seed yields a different sequence.
	z3, r3 := NewZipf(n, 0.99), rng.New(43)
	r4 := rng.New(42)
	same := 0
	for i := 0; i < draws; i++ {
		if z3.Next(r3) == z1.Next(r4) {
			same++
		}
	}
	if same == draws {
		t.Fatal("seeds 42 and 43 produced identical sequences")
	}
}

// TestZipfSkew: the hot prefix dominates — with theta 0.99 over 10k
// keys, the top 1% of keys should absorb well over a third of draws
// (the true mass is ~60%), and key 1 must be the single hottest key.
func TestZipfSkew(t *testing.T) {
	const n, draws = 10_000, 200_000
	z := NewZipf(n, 0.99)
	r := rng.New(7)
	counts := make(map[uint64]int)
	hot := 0
	for i := 0; i < draws; i++ {
		k := z.Next(r)
		counts[k]++
		if k <= n/100 {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.35 {
		t.Fatalf("top 1%% of keys drew only %.1f%% of operations; not skewed", 100*frac)
	}
	for k, c := range counts {
		if k != 1 && c > counts[1] {
			t.Fatalf("key %d (%d draws) hotter than key 1 (%d draws)", k, c, counts[1])
		}
	}
}

// TestZipfInSetMix: a skewed mix draws keys through the Zipf generator
// and remains deterministic end to end.
func TestZipfInSetMix(t *testing.T) {
	z := NewZipf(1000, 0.8)
	m1 := SetMix{KeyRange: 1000, MutatePct: 20, Zipf: z}
	m2 := SetMix{KeyRange: 1000, MutatePct: 20, Zipf: NewZipf(1000, 0.8)}
	r1, r2 := rng.New(99), rng.New(99)
	for i := 0; i < 2000; i++ {
		op1, k1 := m1.Next(r1)
		op2, k2 := m2.Next(r2)
		if op1 != op2 || k1 != k2 {
			t.Fatalf("draw %d diverged: (%v,%d) vs (%v,%d)", i, op1, k1, op2, k2)
		}
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	for _, c := range []struct {
		n     uint64
		theta float64
	}{{0, 0.99}, {100, 0}, {100, 1}, {100, -0.5}, {100, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", c.n, c.theta)
				}
			}()
			NewZipf(c.n, c.theta)
		}()
	}
}
