// Package workload generates the benchmark workloads of the paper's §6:
// key-value operation mixes with a given mutation percentage over a key
// range, and enqueue/dequeue/peek mixes for the queue. All randomness is
// seeded, so a workload is reproducible bit-for-bit.
package workload

import (
	"fmt"
	"sort"

	"stacktrack/internal/rng"
)

// SetMix describes a set-structure workload (list, skip list, hash).
type SetMix struct {
	// KeyRange draws keys uniformly from [1, KeyRange].
	KeyRange uint64
	// MutatePct is the percentage of operations that mutate, split evenly
	// between inserts and deletes (the paper uses 20%).
	MutatePct int
	// Zipf, when non-nil, replaces the uniform key draw with a Zipfian
	// one over [1, Zipf.N()] — the hot-prefix skew of NewZipf.
	Zipf *Zipf
}

// SetOp is one generated set operation.
type SetOp uint8

// Set operation kinds.
const (
	SetContains SetOp = iota
	SetInsert
	SetDelete
)

// Next draws the next operation and key.
func (m SetMix) Next(r *rng.Rand) (SetOp, uint64) {
	var key uint64
	if m.Zipf != nil {
		key = m.Zipf.Next(r)
	} else {
		key = 1 + r.Uint64n(m.KeyRange)
	}
	p := r.Intn(100)
	switch {
	case p < m.MutatePct/2:
		return SetInsert, key
	case p < m.MutatePct:
		return SetDelete, key
	default:
		return SetContains, key
	}
}

// QueueMix describes the queue workload. The paper's "20% mutations" is
// interpreted as 10% enqueues, 10% dequeues, 80% peeks (see DESIGN.md §5).
type QueueMix struct {
	MutatePct int
	ValRange  uint64
}

// QueueOp is one generated queue operation.
type QueueOp uint8

// Queue operation kinds.
const (
	QueuePeek QueueOp = iota
	QueueEnqueue
	QueueDequeue
)

// Next draws the next queue operation and value.
func (m QueueMix) Next(r *rng.Rand) (QueueOp, uint64) {
	p := r.Intn(100)
	switch {
	case p < m.MutatePct/2:
		return QueueEnqueue, 1 + r.Uint64n(m.ValRange)
	case p < m.MutatePct:
		return QueueDequeue, 0
	default:
		return QueuePeek, 0
	}
}

// SampleKeys deterministically draws n distinct keys from [1, keyRange] and
// returns them sorted ascending — the prefill set. It panics if n exceeds
// the key range (a configuration bug).
func SampleKeys(seed uint64, n int, keyRange uint64) []uint64 {
	if uint64(n) > keyRange {
		panic(fmt.Sprintf("workload: cannot sample %d distinct keys from range %d", n, keyRange))
	}
	r := rng.New(seed)
	// Floyd's algorithm for a uniform distinct sample.
	chosen := make(map[uint64]struct{}, n)
	for j := keyRange - uint64(n) + 1; j <= keyRange; j++ {
		k := 1 + r.Uint64n(j)
		if _, dup := chosen[k]; dup {
			k = j
		}
		chosen[k] = struct{}{}
	}
	keys := make([]uint64, 0, n)
	for k := range chosen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
