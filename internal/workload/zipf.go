package workload

// Zipfian key skew. Real key-value workloads are rarely uniform: a
// small hot set absorbs most operations, which concentrates contention
// (and, for the reclamation schemes under test, concentrates frees and
// re-allocations on the same nodes). The generator follows Gray et
// al.'s "Quickly Generating Billion-Record Synthetic Databases"
// rejection-free construction, the same one YCSB uses: O(n) setup to
// compute the harmonic normalizer, O(1) per draw.
//
// Ranks map to keys directly — rank 1 (the hottest) is key 1 — so the
// hot set is a contiguous prefix of the key range. That is deliberate:
// in the sorted structures (list, skip list) it pins contention to the
// front of the structure, the worst case for traversal-heavy schemes.

import (
	"fmt"
	"math"

	"stacktrack/internal/rng"
)

// DefaultZipfTheta is the skew used when a Zipfian workload does not
// specify one — YCSB's default, where the hottest ~20% of keys draw
// ~80% of operations.
const DefaultZipfTheta = 0.99

// Zipf draws keys in [1, n] with P(k) proportional to 1/k^theta.
// Construct with NewZipf; the zero value is not usable.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf precomputes the generator state for n keys with skew theta in
// (0, 1). It panics on a non-positive n or an out-of-range theta (a
// configuration bug, caught earlier by Config validation).
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: Zipf over an empty key range")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: Zipf theta %v outside (0, 1)", theta))
	}
	zetan := zeta(n, theta)
	z := &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan)
	return z
}

// zeta is the truncated Riemann zeta: sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next key in [1, z.n]. Deterministic given r's state:
// one Float64 per draw, so the same seed yields the same key sequence.
func (z *Zipf) Next(r *rng.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 1
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 2
	}
	k := 1 + uint64(float64(z.n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k > z.n { // float roundoff at u ~ 1
		k = z.n
	}
	return k
}

// N returns the key-range size the generator was built for.
func (z *Zipf) N() uint64 { return z.n }
