package workload

import (
	"testing"
	"testing/quick"

	"stacktrack/internal/rng"
)

func TestSetMixProportions(t *testing.T) {
	mix := SetMix{KeyRange: 1000, MutatePct: 20}
	r := rng.New(1)
	counts := map[SetOp]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		op, key := mix.Next(r)
		if key < 1 || key > 1000 {
			t.Fatalf("key %d out of range", key)
		}
		counts[op]++
	}
	ins := float64(counts[SetInsert]) / n
	del := float64(counts[SetDelete]) / n
	rd := float64(counts[SetContains]) / n
	if ins < 0.08 || ins > 0.12 || del < 0.08 || del > 0.12 || rd < 0.77 || rd > 0.83 {
		t.Fatalf("mix off: ins=%.3f del=%.3f read=%.3f", ins, del, rd)
	}
}

func TestQueueMixProportions(t *testing.T) {
	mix := QueueMix{MutatePct: 20, ValRange: 10}
	r := rng.New(2)
	counts := map[QueueOp]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		op, _ := mix.Next(r)
		counts[op]++
	}
	if f := float64(counts[QueuePeek]) / n; f < 0.77 || f > 0.83 {
		t.Fatalf("peek fraction %.3f", f)
	}
}

func TestSampleKeysDistinctSortedInRange(t *testing.T) {
	keys := SampleKeys(7, 1000, 2000)
	if len(keys) != 1000 {
		t.Fatalf("got %d keys", len(keys))
	}
	seen := map[uint64]bool{}
	for i, k := range keys {
		if k < 1 || k > 2000 {
			t.Fatalf("key %d out of range", k)
		}
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
		if i > 0 && keys[i-1] >= k {
			t.Fatal("keys not sorted")
		}
	}
}

func TestSampleKeysDeterministic(t *testing.T) {
	a := SampleKeys(9, 100, 500)
	b := SampleKeys(9, 100, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SampleKeys not deterministic")
		}
	}
}

func TestSampleKeysFullRange(t *testing.T) {
	keys := SampleKeys(3, 10, 10)
	for i, k := range keys {
		if k != uint64(i+1) {
			t.Fatalf("full-range sample must be 1..10, got %v", keys)
		}
	}
}

func TestSampleKeysPanicsWhenOverdrawn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleKeys(1, 11, 10)
}

func TestSampleKeysProperty(t *testing.T) {
	f := func(seed uint64, nRaw, rangeRaw uint16) bool {
		rangeN := uint64(rangeRaw)%500 + 1
		n := int(uint64(nRaw) % (rangeN + 1))
		keys := SampleKeys(seed, n, rangeN)
		if len(keys) != n {
			return false
		}
		for i, k := range keys {
			if k < 1 || k > rangeN {
				return false
			}
			if i > 0 && keys[i-1] >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
