module stacktrack

go 1.22
