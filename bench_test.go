// Benchmarks regenerating the paper's evaluation, one per figure/table.
// Each iteration runs a reduced sweep of the corresponding experiment on
// the simulated machine and reports headline simulated metrics; cmd/stbench
// runs the full sweeps and prints the complete tables.
//
//	go test -bench=. -benchmem
package stacktrack_test

import (
	"testing"

	"stacktrack"
	"stacktrack/internal/bench"
)

// benchOpts is the reduced sweep used inside testing.B iterations.
func benchOpts() stacktrack.Options {
	o := stacktrack.QuickOptions()
	o.Threads = []int{1, 4, 8, 12}
	o.MeasureMs = 2
	o.WarmupMs = 0.5
	return o
}

// runExperiment runs one experiment generator b.N times.
func runExperiment(b *testing.B, fn func(stacktrack.Options) (*stacktrack.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1List(b *testing.B)     { runExperiment(b, stacktrack.Figure1List) }
func BenchmarkFigure1SkipList(b *testing.B) { runExperiment(b, stacktrack.Figure1SkipList) }
func BenchmarkFigure2Queue(b *testing.B)    { runExperiment(b, stacktrack.Figure2Queue) }
func BenchmarkFigure2Hash(b *testing.B)     { runExperiment(b, stacktrack.Figure2Hash) }
func BenchmarkFigure3Aborts(b *testing.B)   { runExperiment(b, stacktrack.Figure3Aborts) }
func BenchmarkFigure4Splits(b *testing.B)   { runExperiment(b, stacktrack.Figure4Splits) }
func BenchmarkFigure5SlowPath(b *testing.B) { runExperiment(b, stacktrack.Figure5SlowPath) }
func BenchmarkTableScanStats(b *testing.B)  { runExperiment(b, stacktrack.TableScanStats) }

// benchScheme measures one structure × scheme point at 8 threads, reporting
// the simulated throughput alongside the host cost of simulating it.
func benchScheme(b *testing.B, structure, scheme string) {
	b.Helper()
	var simOps float64
	for i := 0; i < b.N; i++ {
		res, err := stacktrack.Run(stacktrack.Config{
			Structure:     structure,
			Scheme:        scheme,
			Threads:       8,
			WarmupCycles:  stacktrack.FromSeconds(0.001),
			MeasureCycles: stacktrack.FromSeconds(0.004),
		})
		if err != nil {
			b.Fatal(err)
		}
		simOps = res.Throughput
	}
	b.ReportMetric(simOps, "simulated-ops/sec")
}

func BenchmarkListOriginal(b *testing.B)   { benchScheme(b, bench.StructList, bench.SchemeOriginal) }
func BenchmarkListHazards(b *testing.B)    { benchScheme(b, bench.StructList, bench.SchemeHazards) }
func BenchmarkListEpoch(b *testing.B)      { benchScheme(b, bench.StructList, bench.SchemeEpoch) }
func BenchmarkListDTA(b *testing.B)        { benchScheme(b, bench.StructList, bench.SchemeDTA) }
func BenchmarkListStackTrack(b *testing.B) { benchScheme(b, bench.StructList, bench.SchemeStackTrack) }
func BenchmarkSkipListStackTrack(b *testing.B) {
	benchScheme(b, bench.StructSkipList, bench.SchemeStackTrack)
}
func BenchmarkQueueStackTrack(b *testing.B) {
	benchScheme(b, bench.StructQueue, bench.SchemeStackTrack)
}
func BenchmarkHashStackTrack(b *testing.B) { benchScheme(b, bench.StructHash, bench.SchemeStackTrack) }

// BenchmarkSimulatorThroughput measures the simulator itself: host time per
// simulated basic block (the figure that bounds how long full sweeps take).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var blocks uint64
	for i := 0; i < b.N; i++ {
		res, err := stacktrack.Run(stacktrack.Config{
			Structure:     bench.StructSkipList,
			Scheme:        bench.SchemeStackTrack,
			Threads:       8,
			WarmupCycles:  stacktrack.FromSeconds(0.0005),
			MeasureCycles: stacktrack.FromSeconds(0.004),
		})
		if err != nil {
			b.Fatal(err)
		}
		blocks += res.Core.SegmentBlocks
	}
	b.ReportMetric(float64(blocks)/float64(b.N), "simulated-blocks/op")
}
